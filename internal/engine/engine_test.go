package engine

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// testWorkers forces a real pool even on single-core machines so the
// race detector exercises the sharded paths.
const testWorkers = 4

// testTopologies generates one instance per family x seed: the four
// model classes named by the equivalence requirement (ER random, BA
// preferential attachment, GLP, PFP) at sizes where exact metrics stay
// fast but every code path (sampling, giant component, hubs) is hit.
func testTopologies(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	for _, seed := range []uint64{1, 2, 3} {
		for _, tc := range []struct {
			name string
			g    gen.Generator
		}{
			{"er", gen.GNP{N: 400, P: 4.2 / 399}},
			{"ba", gen.BA{N: 400, M: 2}},
			{"glp", gen.GLP{N: 400, M: 1, P: 0.45, Beta: 0.64}},
			{"pfp", gen.DefaultPFP(300)},
		} {
			top, err := tc.g.Generate(rng.New(seed))
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			out[tc.name+"/"+string(rune('0'+seed))] = top.G
		}
	}
	return out
}

func assertFloatsClose(t *testing.T, key, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %s: length %d vs %d", key, name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s %s[%d] = %v, want %v (Δ=%g)", key, name, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// TestEngineMatchesSequential is the equivalence property test: every
// parallelized metric must reproduce the sequential map-based
// implementation — exactly for integer-valued reductions, within 1e-9
// for floating-point accumulations.
func TestEngineMatchesSequential(t *testing.T) {
	for key, g := range testTopologies(t) {
		e := New(g.Freeze(), WithWorkers(testWorkers))

		assertFloatsClose(t, key, "betweenness", e.Betweenness(), metrics.Betweenness(g), 1e-9)

		wantBC, err := metrics.BetweennessSampled(g, rng.New(99), 37)
		if err != nil {
			t.Fatal(err)
		}
		gotBC, err := e.BetweennessSampled(rng.New(99), 37)
		if err != nil {
			t.Fatal(err)
		}
		assertFloatsClose(t, key, "sampled betweenness", gotBC, wantBC, 1e-9)

		assertFloatsClose(t, key, "closeness", e.Closeness(), metrics.Closeness(g), 0)
		assertFloatsClose(t, key, "harmonic", e.HarmonicCloseness(), metrics.HarmonicCloseness(g), 0)

		for _, sources := range []int{0, 50} {
			want, err := metrics.PathLengths(g, rng.New(7), sources)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.PathLengths(rng.New(7), sources)
			if err != nil {
				t.Fatal(err)
			}
			if got.Avg != want.Avg || got.Diameter != want.Diameter || got.Sources != want.Sources ||
				!reflect.DeepEqual(got.Distribution, want.Distribution) {
				t.Fatalf("%s paths(sources=%d): %+v vs %+v", key, sources, got, want)
			}
		}

		if got, want := e.TrianglesPerNode(), metrics.TrianglesPerNode(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: triangle counts differ", key)
		}
		if got, want := e.AvgClustering(), metrics.AvgClustering(g); got != want {
			t.Fatalf("%s: avg clustering %v vs %v", key, got, want)
		}
		if got, want := e.Transitivity(), metrics.Transitivity(g); got != want {
			t.Fatalf("%s: transitivity %v vs %v", key, got, want)
		}
		if got, want := e.ClusteringSpectrum(), metrics.ClusteringSpectrum(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: clustering spectra differ", key)
		}
		if got, want := e.KCore(), metrics.KCore(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: k-core differs", key)
		}
		if got, want := e.RichClub(), metrics.RichClub(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: rich club differs", key)
		}
		if got, want := e.CountCycles(), metrics.CountCycles(g); got != want {
			t.Fatalf("%s: cycles %+v vs %+v", key, got, want)
		}
		if got, want := e.Assortativity(), metrics.Assortativity(g); math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: assortativity %v vs %v", key, got, want)
		}
	}
}

// TestEngineMeasureMatchesSequential checks the full metric vector
// against metrics.Measure for identical generator states.
func TestEngineMeasureMatchesSequential(t *testing.T) {
	for key, g := range testTopologies(t) {
		for _, sources := range []int{0, 60} {
			want, err := metrics.Measure(g, rng.New(11), sources)
			if err != nil {
				t.Fatal(err)
			}
			got, err := New(g.Freeze(), WithWorkers(testWorkers)).Measure(rng.New(11), sources)
			if err != nil {
				t.Fatal(err)
			}
			if got.N != want.N || got.M != want.M || got.MaxDegree != want.MaxDegree ||
				got.Diameter != want.Diameter || got.MaxCore != want.MaxCore {
				t.Fatalf("%s sources=%d: integer fields differ: %+v vs %+v", key, sources, got, want)
			}
			for _, f := range []struct {
				name      string
				got, want float64
			}{
				{"avg degree", got.AvgDegree, want.AvgDegree},
				{"gamma", got.Gamma, want.Gamma},
				{"gammaKS", got.GammaKS, want.GammaKS},
				{"avg clustering", got.AvgClustering, want.AvgClustering},
				{"transitivity", got.Transitivity, want.Transitivity},
				{"assortativity", got.Assortativity, want.Assortativity},
				{"avg path len", got.AvgPathLen, want.AvgPathLen},
				{"giant frac", got.GiantFrac, want.GiantFrac},
			} {
				if math.Abs(f.got-f.want) > 1e-9 {
					t.Fatalf("%s sources=%d: %s = %v, want %v", key, sources, f.name, f.got, f.want)
				}
			}
		}
	}
}

func TestEngineMemoization(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	e := New(g.Freeze(), WithWorkers(testWorkers))
	b1 := e.Betweenness()
	b2 := e.Betweenness()
	if &b1[0] != &b2[0] {
		t.Fatal("betweenness not memoized")
	}
	t1 := e.TrianglesPerNode()
	t2 := e.TrianglesPerNode()
	if &t1[0] != &t2[0] {
		t.Fatal("triangles not memoized")
	}
	p1, err := e.PathLengths(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := e.PathLengths(nil, 0)
	if p1.Avg != p2.Avg {
		t.Fatal("exact path stats must be stable")
	}
	giant1, _ := e.Giant()
	giant2, _ := e.Giant()
	if giant1 != giant2 {
		t.Fatal("giant component engine not memoized")
	}
}

func TestEngineSampledErrors(t *testing.T) {
	g := graph.New(10)
	g.MustAddEdge(0, 1)
	e := New(g.Freeze())
	if _, err := e.BetweennessSampled(nil, 5); err == nil {
		t.Fatal("nil generator must error")
	}
	if _, err := e.BetweennessSampled(rng.New(1), 0); err == nil {
		t.Fatal("non-positive sources must error")
	}
	if _, err := e.PathLengths(nil, 5); err == nil {
		t.Fatal("sampling without generator must error")
	}
	if _, err := New(graph.New(0).Freeze()).PathLengths(nil, 0); err == nil {
		t.Fatal("empty graph must error")
	}
}

func TestEngineEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := graph.New(n)
		if n == 2 {
			g.MustAddEdge(0, 1)
		}
		e := New(g.Freeze(), WithWorkers(testWorkers))
		if got, want := e.Betweenness(), metrics.Betweenness(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: betweenness %v vs %v", n, got, want)
		}
		if got, want := e.CountCycles(), metrics.CountCycles(g); got != want {
			t.Fatalf("n=%d: cycles differ", n)
		}
		snap, err := e.Measure(nil, 0)
		if n == 0 {
			if err != nil {
				t.Fatalf("empty Measure: %v", err)
			}
			if snap.GiantFrac != 1 {
				t.Fatalf("empty GiantFrac = %v", snap.GiantFrac)
			}
			continue
		}
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestEngineDeterministicAcrossRuns pins the static-schedule guarantee:
// at a fixed worker count, floating-point reductions reproduce bit for
// bit between runs because chunk-to-worker assignment is a pure
// function of (n, workers).
func TestEngineDeterministicAcrossRuns(t *testing.T) {
	top, err := gen.DefaultPFP(300).Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s := top.G.Freeze()
	first := New(s, WithWorkers(testWorkers)).Betweenness()
	for run := 0; run < 3; run++ {
		again := New(s, WithWorkers(testWorkers)).Betweenness()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d: betweenness[%d] = %v, want %v (bitwise)", run, i, again[i], first[i])
			}
		}
	}
}

func TestParallelFor(t *testing.T) {
	for _, n := range []int{0, 1, 16, 17, 1000} {
		for _, workers := range []int{0, 1, 4, 64} {
			var hits atomic.Int64
			seen := make([]atomic.Int32, n)
			ParallelFor(n, workers, func(w, i int) {
				hits.Add(1)
				seen[i].Add(1)
			})
			if hits.Load() != int64(n) {
				t.Fatalf("n=%d workers=%d: %d invocations", n, workers, hits.Load())
			}
			for i := range seen {
				if seen[i].Load() != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, seen[i].Load())
				}
			}
		}
	}
}

func TestParallelForWorkerIndexBounds(t *testing.T) {
	const workers = 8
	var bad atomic.Int32
	ParallelFor(500, workers, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker index out of bounds")
	}
}
