package engine

import (
	"math"
	"reflect"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// replayTrajectory replays a generated topology's edge list as a
// growth trajectory, advancing one engine along refreshed snapshots
// and handing each epoch to check.
func replayTrajectory(t *testing.T, top *gen.Topology, every int,
	check func(eng *Engine, g *graph.Graph, d *graph.Delta)) {
	t.Helper()
	g := graph.New(0)
	prev, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	eng := New(prev, WithWorkers(testWorkers))
	edges := top.G.EdgeList()
	for i, e := range edges {
		for g.N() <= e.V || g.N() <= e.U {
			g.AddNode()
		}
		for w := 0; w < e.W; w++ {
			g.MustAddEdge(e.U, e.V)
		}
		if (i+1)%every == 0 || i == len(edges)-1 {
			next, d, err := g.Refreeze(prev)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Advance(next, d); err != nil {
				t.Fatal(err)
			}
			check(eng, g, d)
			prev = next
		}
	}
}

// TestAdvanceStaleEntryNeverServed is the cache-identity regression:
// an entry memoized before a refresh must never satisfy a lookup after
// Advance, for engine metrics and namespaced sibling keys alike.
func TestAdvanceStaleEntryNeverServed(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	s := g.Freeze()
	eng := New(s, WithWorkers(testWorkers))

	staleTri := eng.TrianglesPerNode()
	calls := 0
	first := eng.Cached("test:probe", func() any { calls++; return "v1" })
	if first != "v1" || calls != 1 {
		t.Fatalf("probe seed: %v calls=%d", first, calls)
	}
	// Memoized: second demand must not recompute.
	if got := eng.Cached("test:probe", func() any { calls++; return "v2" }); got != "v1" || calls != 1 {
		t.Fatalf("probe not memoized: %v calls=%d", got, calls)
	}

	g.MustAddEdge(0, 2) // closes a triangle
	next, d, err := g.Refreeze(s)
	if err != nil || d == nil {
		t.Fatalf("refreeze: %v", err)
	}
	if err := eng.Advance(next, d); err != nil {
		t.Fatal(err)
	}
	if got := eng.Cached("test:probe", func() any { calls++; return "v2" }); got != "v2" || calls != 2 {
		t.Fatalf("stale probe entry served after Advance: %v calls=%d", got, calls)
	}
	freshTri := eng.TrianglesPerNode()
	if reflect.DeepEqual(staleTri, freshTri) {
		t.Fatal("triangle counts did not change after closing a triangle")
	}
	if want := metrics.TrianglesPerNodeFrozen(next); !reflect.DeepEqual(freshTri, want) {
		t.Fatalf("advanced triangles %v, want %v", freshTri, want)
	}
}

// TestAdvanceErrors pins the validation surface.
func TestAdvanceErrors(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	s := g.Freeze()
	eng := New(s)
	if err := eng.Advance(nil, nil); err == nil {
		t.Fatal("nil snapshot must error")
	}
	g.MustAddEdge(1, 2)
	next, d, err := g.Refreeze(s)
	if err != nil || d == nil {
		t.Fatalf("refreeze: %v", err)
	}
	other := graph.New(3).Freeze()
	engOther := New(other)
	if err := engOther.Advance(next, d); err == nil {
		t.Fatal("delta against a foreign engine snapshot must error")
	}
	if err := eng.Advance(next, d); err != nil {
		t.Fatal(err)
	}
}

// TestAdvanceTrajectoryMatchesFreshEngines is the engine-level
// equivalence property across generator families × seeds × epoch
// schedules: at every epoch, the advanced engine's delta-maintained
// metrics and MeasureGrowth vector must equal those of a cold engine
// on a fresh freeze of the same graph.
func TestAdvanceTrajectoryMatchesFreshEngines(t *testing.T) {
	families := []struct {
		name string
		g    gen.Generator
	}{
		{"ba", gen.BA{N: 260, M: 2}},
		{"glp", gen.GLP{N: 260, M: 1, P: 0.45, Beta: 0.64}},
		{"pfp", gen.DefaultPFP(220)},
	}
	for _, fam := range families {
		for seed := uint64(1); seed <= 3; seed++ {
			top, err := fam.g.Generate(rng.New(seed))
			if err != nil {
				t.Fatalf("%s/%d: %v", fam.name, seed, err)
			}
			for _, every := range []int{29, 113} {
				replayTrajectory(t, top, every, func(eng *Engine, g *graph.Graph, d *graph.Delta) {
					cold := New(g.Copy().Freeze(), WithWorkers(testWorkers))
					if got, want := eng.TrianglesPerNode(), cold.TrianglesPerNode(); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%d every=%d n=%d: triangles diverged", fam.name, seed, every, g.N())
					}
					if got, want := eng.KCore(), cold.KCore(); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%d every=%d n=%d: k-core diverged", fam.name, seed, every, g.N())
					}
					if got, want := eng.DegreeHistogram(), cold.DegreeHistogram(); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%d every=%d n=%d: histogram diverged", fam.name, seed, every, g.N())
					}
					got, want := eng.MeasureGrowth(), cold.MeasureGrowth()
					if got != want {
						t.Fatalf("%s/%d every=%d n=%d: growth stats %+v vs %+v",
							fam.name, seed, every, g.N(), got, want)
					}
					// And against the sequential reference on the graph.
					seq := metrics.MeasureGrowth(g)
					if got.N != seq.N || got.M != seq.M || got.MaxCore != seq.MaxCore ||
						math.Abs(got.AvgClustering-seq.AvgClustering) > 1e-12 ||
						math.Abs(got.Gamma-seq.Gamma) > 1e-9 {
						t.Fatalf("%s/%d every=%d: engine %+v vs sequential %+v", fam.name, seed, every, got, seq)
					}
				})
			}
		}
	}
}

// TestAdvanceWithoutDelta: a nil delta (full-freeze fallback) rebases
// with no inheritance but stays correct.
func TestAdvanceWithoutDelta(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	s := g.Freeze()
	eng := New(s, WithWorkers(testWorkers))
	eng.TrianglesPerNode()
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	next := g.Freeze() // full freeze, no delta
	if err := eng.Advance(next, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := eng.TrianglesPerNode(), metrics.TrianglesPerNodeFrozen(next); !reflect.DeepEqual(got, want) {
		t.Fatalf("triangles %v, want %v", got, want)
	}
}
