package engine

import (
	"errors"

	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// Betweenness computes exact Brandes betweenness from every source,
// sharding sources across the pool. The result is memoized; callers
// must not modify the returned slice.
func (e *Engine) Betweenness() []float64 {
	return e.Cached("betweenness", func() any {
		bc, _ := e.betweenness(nil, 0)
		return bc
	}).([]float64)
}

// BetweennessSampled estimates betweenness from `sources` sampled BFS
// roots, selecting sources exactly as the sequential implementation
// does for the same generator state. Sampled runs are not memoized.
func (e *Engine) BetweennessSampled(r *rng.Rand, sources int) ([]float64, error) {
	if sources <= 0 {
		return nil, errSourceCount
	}
	if r == nil {
		return nil, errNeedRand
	}
	if sources >= e.s.N() {
		return e.Betweenness(), nil
	}
	return e.betweenness(r, sources)
}

// The sampling error cases mirror the sequential implementations in
// internal/metrics, message for message.
var (
	errSourceCount = errors.New("metrics: source count must be positive")
	errNeedRand    = errors.New("metrics: sampling requires a generator")
)

func (e *Engine) betweenness(r *rng.Rand, sources int) ([]float64, error) {
	s := e.s
	n := s.N()
	bc := make([]float64, n)
	if n < 3 {
		return bc, nil
	}
	srcs, scale := metrics.BetweennessSources(n, r, sources)
	workers := e.workers
	scratch := make([]*metrics.BrandesScratch, workers)
	partial := make([][]float64, workers)
	e.parallelFor(len(srcs), func(w, i int) {
		if scratch[w] == nil {
			scratch[w] = metrics.NewBrandesScratch(n)
			partial[w] = make([]float64, n)
		}
		metrics.BrandesFrozen(s, srcs[i], scratch[w], partial[w], scale)
	})
	norm := float64(n-1) * float64(n-2)
	for _, p := range partial {
		if p == nil {
			continue
		}
		for i, v := range p {
			bc[i] += v
		}
	}
	for i := range bc {
		bc[i] /= norm
	}
	return bc, nil
}

// Closeness computes Wasserman-Faust closeness for every node, one BFS
// per node sharded across the pool. Memoized; do not modify the result.
func (e *Engine) Closeness() []float64 {
	return e.Cached("closeness", func() any {
		return e.perNodeBFS(metrics.ClosenessOfDist)
	}).([]float64)
}

// HarmonicCloseness computes harmonic closeness for every node.
// Memoized; do not modify the result.
func (e *Engine) HarmonicCloseness() []float64 {
	return e.Cached("harmonic-closeness", func() any {
		if e.s.N() < 2 {
			return make([]float64, e.s.N())
		}
		return e.perNodeBFS(metrics.HarmonicOfDist)
	}).([]float64)
}

// perNodeBFS runs one BFS per node and reduces each distance vector
// with the given functional; out[u] depends only on u's own BFS, so the
// parallel result is bit-identical to the sequential one.
func (e *Engine) perNodeBFS(reduce func(dist []int32, n int) float64) []float64 {
	s := e.s
	n := s.N()
	out := make([]float64, n)
	type bfsScratch struct {
		dist []int32
		sc   *metrics.BFSScratch
	}
	scratch := make([]*bfsScratch, e.workers)
	e.parallelFor(n, func(w, u int) {
		if scratch[w] == nil {
			scratch[w] = &bfsScratch{dist: make([]int32, n), sc: metrics.NewBFSScratch(n)}
		}
		metrics.BFSHybrid(s, u, scratch[w].dist, scratch[w].sc)
		out[u] = reduce(scratch[w].dist, n)
	})
	return out
}

// PathLengths measures shortest-path statistics from every node
// (sources <= 0 or >= N) or a uniform sample, sharding BFS roots across
// the pool. The per-worker reductions are integer histograms, so the
// merged statistics are bit-identical to the sequential PathLengths.
// Exact (unsampled) runs are memoized.
func (e *Engine) PathLengths(r *rng.Rand, sources int) (metrics.PathStats, error) {
	n := e.s.N()
	if sources <= 0 || sources >= n {
		if n == 0 {
			_, err := metrics.PathSources(n, r, sources)
			return metrics.PathStats{}, err
		}
		st := e.Cached("paths-exact", func() any {
			st, _ := e.pathLengths(nil, 0)
			return st
		}).(metrics.PathStats)
		return st, nil
	}
	return e.pathLengths(r, sources)
}

func (e *Engine) pathLengths(r *rng.Rand, sources int) (metrics.PathStats, error) {
	s := e.s
	n := s.N()
	srcs, err := metrics.PathSources(n, r, sources)
	if err != nil {
		return metrics.PathStats{}, err
	}
	type pathScratch struct {
		dist []int32
		sc   *metrics.BFSScratch
		hist metrics.PathHistogram
	}
	scratch := make([]*pathScratch, e.workers)
	e.parallelFor(len(srcs), func(w, i int) {
		if scratch[w] == nil {
			scratch[w] = &pathScratch{dist: make([]int32, n), sc: metrics.NewBFSScratch(n)}
		}
		metrics.BFSHybrid(s, srcs[i], scratch[w].dist, scratch[w].sc)
		scratch[w].hist.AccumulateDistances(srcs[i], scratch[w].dist)
	})
	var total metrics.PathHistogram
	for _, sc := range scratch {
		if sc != nil {
			total.Merge(&sc.hist)
		}
	}
	return total.ToStats(len(srcs)), nil
}

// TrianglesPerNode counts triangles through every node by sharding
// smallest-corner ranges across the pool. Memoized; do not modify the
// result.
func (e *Engine) TrianglesPerNode() []int {
	return e.Cached("triangles", func() any {
		s := e.s
		n := s.N()
		workers := e.workers
		partial := make([][]int, workers)
		e.parallelFor(n, func(w, u int) {
			if partial[w] == nil {
				partial[w] = make([]int, n)
			}
			metrics.TriangleRangeFrozen(s, u, u+1, partial[w])
		})
		t := make([]int, n)
		for _, p := range partial {
			if p == nil {
				continue
			}
			for i, v := range p {
				t[i] += v
			}
		}
		return t
	}).([]int)
}

// TotalTriangles returns the triangle count of the graph.
func (e *Engine) TotalTriangles() int {
	sum := 0
	for _, t := range e.TrianglesPerNode() {
		sum += t
	}
	return sum / 3
}

// LocalClustering returns the local clustering coefficient per node,
// derived from the memoized triangle counts. Memoized; do not modify
// the result.
func (e *Engine) LocalClustering() []float64 {
	return e.Cached("local-clustering", func() any {
		return metrics.LocalClusteringFromTriangles(e.s, e.TrianglesPerNode())
	}).([]float64)
}

// AvgClustering returns mean local clustering over nodes of degree >= 2.
func (e *Engine) AvgClustering() float64 {
	return metrics.AvgClusteringFromLocal(e.s, e.LocalClustering())
}

// Transitivity returns the global clustering coefficient.
func (e *Engine) Transitivity() float64 {
	return metrics.TransitivityFromTriangles(e.s, e.TrianglesPerNode())
}

// ClusteringSpectrum returns c(k), mean local clustering by degree.
func (e *Engine) ClusteringSpectrum() map[int]float64 {
	return metrics.ClusteringSpectrumFromLocal(e.s, e.LocalClustering())
}

// KCore returns the k-core decomposition. The bucket algorithm is
// inherently sequential but O(M) over flat arrays; the result is
// memoized.
func (e *Engine) KCore() metrics.KCoreResult {
	return e.Cached("kcore", func() any {
		return metrics.KCoreFrozen(e.s)
	}).(metrics.KCoreResult)
}

// RichClub returns the rich-club connectivity curve. Memoized; do not
// modify the result.
func (e *Engine) RichClub() []metrics.RichClubPoint {
	return e.Cached("richclub", func() any {
		return metrics.RichClubFrozen(e.s)
	}).([]metrics.RichClubPoint)
}

// CountCycles counts 3-, 4- and 5-cycles exactly, sharding the
// per-node 2-neighborhood kernels across the pool. All reductions are
// integral, so the counts are bit-identical to the sequential
// CountCycles. Memoized.
func (e *Engine) CountCycles() metrics.CycleCounts {
	return e.Cached("cycles", func() any {
		s := e.s
		n := s.N()
		if n < 3 {
			return metrics.CycleCounts{}
		}
		tri := e.TrianglesPerNode()
		workers := e.workers
		scratch := make([]*metrics.CycleScratch, workers)
		ordered4 := make([]int64, workers)
		trA5 := make([]int64, workers)
		e.parallelFor(n, func(w, i int) {
			if scratch[w] == nil {
				scratch[w] = metrics.NewCycleScratch(n)
			}
			o4, t5 := metrics.CycleNodeFrozen(s, i, scratch[w])
			ordered4[w] += o4
			trA5[w] += t5
		})
		var o4, t5 int64
		for w := 0; w < workers; w++ {
			o4 += ordered4[w]
			t5 += trA5[w]
		}
		return metrics.CyclesFromParts(s, tri, o4, t5)
	}).(metrics.CycleCounts)
}

// Knn returns the average-nearest-neighbor-degree spectrum. Memoized;
// do not modify the result.
func (e *Engine) Knn() map[int]float64 {
	return e.Cached("knn", func() any {
		return metrics.KnnFrozen(e.s)
	}).(map[int]float64)
}

// Assortativity returns Newman's degree-degree correlation r.
func (e *Engine) Assortativity() float64 {
	return e.Cached("assortativity", func() any {
		return metrics.AssortativityFrozen(e.s)
	}).(float64)
}

// DegreesAsFloats returns the degree sequence as floats for the stats
// package. Memoized; do not modify the result.
func (e *Engine) DegreesAsFloats() []float64 {
	return e.Cached("degrees-float", func() any {
		return metrics.DegreesAsFloatsFrozen(e.s)
	}).([]float64)
}

// DegreeHistogram returns hist[k] = number of nodes of degree k.
// Memoized and delta-maintained across Advance; do not modify the
// result.
func (e *Engine) DegreeHistogram() []int {
	return e.Cached("degree-hist", func() any {
		return metrics.DegreeHistogramFrozen(e.s)
	}).([]int)
}
