package engine

import (
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

// giantPart bundles the memoized giant-component sub-snapshot with its
// own engine, so path statistics measured on the giant share worker
// configuration and memoization with the parent.
type giantPart struct {
	eng     *Engine
	mapping []int
}

// Giant returns an engine over the giant component's sub-snapshot and
// the new-to-old node mapping, computed once per snapshot.
func (e *Engine) Giant() (*Engine, []int) {
	gp := e.Cached("giant", func() any {
		sub, mapping := e.s.GiantComponent()
		return &giantPart{eng: New(sub, WithWorkers(e.workers)), mapping: mapping}
	}).(*giantPart)
	return gp.eng, gp.mapping
}

// Measure computes the full metric vector of the snapshot through the
// parallel engine, mirroring metrics.Measure field for field: the same
// power-law fit, the same giant-component convention for path and core
// statistics, and the same source sampling for a given generator state.
func (e *Engine) Measure(r *rng.Rand, pathSources int) (metrics.Snapshot, error) {
	s := e.s
	out := metrics.Snapshot{
		N:         s.N(),
		M:         s.M(),
		AvgDegree: s.AvgDegree(),
		MaxDegree: s.MaxDegree(),
	}
	if s.N() == 0 {
		out.GiantFrac = 1
		return out, nil
	}
	if fit, err := stats.FitPowerLawDiscrete(e.DegreesAsFloats()); err == nil {
		out.Gamma = fit.Alpha
		out.GammaKS = fit.KS
	}
	out.AvgClustering = e.AvgClustering()
	out.Transitivity = e.Transitivity()
	out.Assortativity = e.Assortativity()

	giant, _ := e.Giant()
	out.GiantFrac = float64(giant.Snapshot().N()) / float64(s.N())
	if giant.Snapshot().N() > 1 {
		ps, err := giant.PathLengths(r, pathSources)
		if err != nil {
			return out, err
		}
		out.AvgPathLen = ps.Avg
		out.Diameter = ps.Diameter
	}
	out.MaxCore = e.KCore().MaxCore
	return out, nil
}

// MeasureGraph freezes g and measures it through a fresh engine — the
// one-call convenience for callers that do not reuse the snapshot.
func MeasureGraph(g *graph.Graph, r *rng.Rand, pathSources int) (metrics.Snapshot, error) {
	return New(g.Freeze()).Measure(r, pathSources)
}

// MeasureGrowth computes the trajectory observation vector of the
// current snapshot, mirroring metrics.MeasureGrowth field for field.
// Every input — degree histogram, triangle counts, k-core — is
// memoized and delta-maintained across Advance, so measuring each
// epoch of a growth trajectory costs time proportional to the epoch's
// delta plus O(N) derivations, not a fresh pass over the map.
func (e *Engine) MeasureGrowth() metrics.GrowthStats {
	s := e.s
	out := metrics.GrowthStats{
		N:         s.N(),
		M:         s.M(),
		Strength:  s.TotalStrength(),
		AvgDegree: s.AvgDegree(),
		MaxDegree: s.MaxDegree(),
	}
	if s.N() == 0 {
		return out
	}
	if fit, err := stats.FitPowerLawHistogram(e.DegreeHistogram()); err == nil {
		out.Gamma = fit.Alpha
		out.GammaKS = fit.KS
	}
	out.AvgClustering = e.AvgClustering()
	out.Transitivity = e.Transitivity()
	out.MaxCore = e.KCore().MaxCore
	return out
}
