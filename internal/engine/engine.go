// Package engine is the parallel metrics engine of netmodel: it takes
// an immutable graph.Snapshot (CSR arrays, safe for concurrent reads)
// and shards per-source traversal work — BFS, Brandes betweenness,
// triangle and cycle counting — across a pool of GOMAXPROCS workers.
// Results of the parameterless whole-graph metrics are memoized per
// snapshot, so a pipeline that needs clustering for a report and again
// for a spectrum pays for it once.
//
// Every engine metric is numerically equivalent to its sequential
// reference in internal/metrics: integer-valued reductions (path
// histograms, triangle and cycle counts, coreness, rich-club) are
// bit-identical, and floating-point accumulations (betweenness
// dependencies, assortativity sums) agree to ~1e-12 relative error,
// differing only in summation order. The equivalence tests in this
// package enforce that contract across generator families and seeds.
package engine

import (
	"runtime"
	"sync"

	"netmodel/internal/graph"
	"netmodel/internal/par"
)

// Engine runs parallel analyses over one frozen snapshot.
type Engine struct {
	s       *graph.Snapshot
	workers int

	mu   sync.Mutex
	memo map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the worker-pool size; n <= 0 means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// DefaultWorkers returns the default worker-pool width, GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// New returns an engine over the snapshot. The default worker count is
// GOMAXPROCS.
func New(s *graph.Snapshot, opts ...Option) *Engine {
	e := &Engine{s: s, workers: runtime.GOMAXPROCS(0), memo: make(map[string]*memoEntry)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Snapshot returns the frozen topology the engine analyzes.
func (e *Engine) Snapshot() *graph.Snapshot { return e.s }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Cached exposes the engine's per-snapshot memoization to sibling
// analysis layers (policy metrics, traffic studies) so that everything
// computed over one frozen topology shares a single cache. Keys are
// namespaced by convention ("aspolicy:cone", ...); the engine's own
// metrics use bare keys. Concurrent callers of the same key block on a
// single computation; callers must not modify returned values.
func (e *Engine) Cached(key string, compute func() any) any {
	e.mu.Lock()
	ent, ok := e.memo[key]
	if !ok {
		ent = &memoEntry{}
		e.memo[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.val = compute() })
	return ent.val
}

// ParallelFor runs fn(worker, i) for every i in [0, n) across the given
// number of workers (<= 0 means GOMAXPROCS), delegating to the shared
// static-chunk scheduler in internal/par. Chunks of indices are
// assigned round-robin by worker index — a static schedule, so which
// worker processes which index is a pure function of (n, workers).
// Per-worker floating-point accumulators merged in worker order
// therefore reproduce bit for bit between runs at the same worker
// count, preserving the toolkit's seeded-reproducibility contract.
// fn invocations within one worker are ordered; across workers they
// race, so fn must only write worker-private or index-private state.
// ParallelFor returns when all indices are done.
func ParallelFor(n, workers int, fn func(worker, i int)) {
	par.For(n, workers, fn)
}

// parallelFor is ParallelFor with the engine's worker count.
func (e *Engine) parallelFor(n int, fn func(worker, i int)) {
	ParallelFor(n, e.workers, fn)
}
