// Package engine is the parallel metrics engine of netmodel: it takes
// an immutable graph.Snapshot (CSR arrays, safe for concurrent reads)
// and shards per-source traversal work — BFS, Brandes betweenness,
// triangle and cycle counting — across a pool of GOMAXPROCS workers.
// Results of the parameterless whole-graph metrics are memoized per
// snapshot, so a pipeline that needs clustering for a report and again
// for a spectrum pays for it once.
//
// Every engine metric is numerically equivalent to its sequential
// reference in internal/metrics: integer-valued reductions (path
// histograms, triangle and cycle counts, coreness, rich-club) are
// bit-identical, and floating-point accumulations (betweenness
// dependencies, assortativity sums) agree to ~1e-12 relative error,
// differing only in summation order. The equivalence tests in this
// package enforce that contract across generator families and seeds.
package engine

import (
	"errors"
	"runtime"
	"strconv"
	"sync"

	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/par"
)

var (
	errNilSnapshot = errors.New("engine: Advance needs a snapshot")
	errDeltaBase   = errors.New("engine: delta does not extend the engine's current snapshot")
)

// Engine runs parallel analyses over one frozen snapshot. Along a
// growth trajectory the engine is version-aware: Advance rebases it
// onto a refreshed snapshot, memo keys carry the snapshot version so a
// stale entry can never be served, and metrics with incremental
// kernels are maintained from the previous epoch's values instead of
// recomputed.
type Engine struct {
	s       *graph.Snapshot
	workers int

	mu      sync.Mutex
	memo    map[string]*memoEntry
	inherit map[string]func() any // incremental computations for the current snapshot, by bare key
}

type memoEntry struct {
	once sync.Once
	val  any
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the worker-pool size; n <= 0 means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// DefaultWorkers returns the default worker-pool width, GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// New returns an engine over the snapshot. The default worker count is
// GOMAXPROCS.
func New(s *graph.Snapshot, opts ...Option) *Engine {
	e := &Engine{s: s, workers: runtime.GOMAXPROCS(0), memo: make(map[string]*memoEntry)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Snapshot returns the frozen topology the engine analyzes.
func (e *Engine) Snapshot() *graph.Snapshot { return e.s }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Cached exposes the engine's per-snapshot memoization to sibling
// analysis layers (policy metrics, traffic studies) so that everything
// computed over one frozen topology shares a single cache. Keys are
// namespaced by convention ("aspolicy:cone", "traffic:routing" — the
// workload simulator's shortest-path trees, reused across repeated
// simulations of one snapshot); the engine's own metrics use bare keys. Every entry is stored under the current
// snapshot's version, so after an Advance an old entry can never be
// served for the refreshed topology. Concurrent callers of the same
// key block on a single computation; callers must not modify returned
// values.
func (e *Engine) Cached(key string, compute func() any) any {
	e.mu.Lock()
	vkey := strconv.FormatUint(e.s.Version(), 10) + ":" + key
	ent, ok := e.memo[vkey]
	if !ok {
		ent = &memoEntry{}
		e.memo[vkey] = ent
		if inc, ok := e.inherit[key]; ok {
			// First demand for a metric with an incremental kernel on
			// this snapshot: run the kernel instead of the full compute.
			// One-shot — drop the closure so it stops pinning the
			// previous snapshot and its metric vectors.
			compute = inc
			delete(e.inherit, key)
		}
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.val = compute() })
	return ent.val
}

// peek returns the memoized value of a bare key under the current
// snapshot version, if it has been computed.
func (e *Engine) peek(key string) (any, bool) {
	e.mu.Lock()
	ent, ok := e.memo[strconv.FormatUint(e.s.Version(), 10)+":"+key]
	e.mu.Unlock()
	if !ok || ent.val == nil {
		return nil, false
	}
	return ent.val, true
}

// Advance rebases the engine onto next, the refreshed successor of the
// current snapshot produced by Graph.Refreeze. When d is the delta
// between the two snapshots, metrics with incremental kernels —
// triangle counts (and the clustering family derived from them), the
// k-core decomposition, the degree histogram, the incremental distance
// map behind the trajectory path metrics — are carried forward
// from the previous epoch's memoized values and maintained in time
// proportional to the delta on their next demand; everything else is
// dropped and recomputed lazily. A nil d (Refreeze fell back to a full
// freeze) rebases without inheritance. Advance must not run
// concurrently with metric queries; the trajectory drivers alternate
// strictly between advancing and measuring.
func (e *Engine) Advance(next *graph.Snapshot, d *graph.Delta) error {
	if next == nil {
		return errNilSnapshot
	}
	prev := e.s
	inherit := make(map[string]func() any)
	if d != nil {
		if d.BaseVersion() != prev.Version() {
			return errDeltaBase
		}
		if tri, ok := e.peek("triangles"); ok {
			prevTri := tri.([]int)
			inherit["triangles"] = func() any {
				return metrics.RefreshTriangles(prev, next, d, prevTri)
			}
		}
		if core, ok := e.peek("kcore"); ok {
			prevCore := core.(metrics.KCoreResult)
			inherit["kcore"] = func() any {
				return metrics.RefreshKCore(prev, next, d, prevCore)
			}
		}
		if hist, ok := e.peek("degree-hist"); ok {
			prevHist := hist.([]int)
			inherit["degree-hist"] = func() any {
				return metrics.RefreshDegreeHistogram(prev, next, d, prevHist)
			}
		}
		if dmv, ok := e.peek("distmap"); ok {
			// The distance map repairs in place — it consumes the previous
			// epoch's rows rather than copying them, so unlike the kernels
			// above the old memo value must never be served again. Advance
			// drops the old memo wholesale below, which is exactly that.
			prevDM := dmv.(*metrics.DistMap)
			inherit["distmap"] = func() any {
				prevDM.Refresh(next, d, e.workers)
				return prevDM
			}
		}
	}
	e.mu.Lock()
	e.s = next
	e.inherit = inherit
	// Entries of earlier versions can never be hit again (versions are
	// unique and monotone); drop them so a 100-epoch trajectory does not
	// hold 100 epochs of metric vectors alive.
	e.memo = make(map[string]*memoEntry)
	e.mu.Unlock()
	return nil
}

// ParallelFor runs fn(worker, i) for every i in [0, n) across the given
// number of workers (<= 0 means GOMAXPROCS), delegating to the shared
// static-chunk scheduler in internal/par. Chunks of indices are
// assigned round-robin by worker index — a static schedule, so which
// worker processes which index is a pure function of (n, workers).
// Per-worker floating-point accumulators merged in worker order
// therefore reproduce bit for bit between runs at the same worker
// count, preserving the toolkit's seeded-reproducibility contract.
// fn invocations within one worker are ordered; across workers they
// race, so fn must only write worker-private or index-private state.
// ParallelFor returns when all indices are done.
func ParallelFor(n, workers int, fn func(worker, i int)) {
	par.For(n, workers, fn)
}

// parallelFor is ParallelFor with the engine's worker count.
func (e *Engine) parallelFor(n int, fn func(worker, i int)) {
	ParallelFor(n, e.workers, fn)
}
