package engine

import (
	"netmodel/internal/metrics"
)

// This file wires the incremental distance engine (metrics.DistMap)
// into the versioned cache: the map lives under the "distmap" key, is
// carried across Advance by an in-place Refresh keyed to the epoch
// delta, and the distance metrics of trajectory mode derive from it —
// so MeasureGrowth-style observation no longer refuses path metrics,
// it repairs them.

// GrowthDistMap returns the snapshot's incremental distance map,
// building it on first demand and repairing it across Advance. pivots
// selects the source set of that first build: nil means exact mode (one
// BFS row per node, bit-identical path metrics), a non-nil slice fixes
// the pivot set of sampled mode (metrics.PivotSources draws one). The
// pivot set is bound when the map is first built; later calls ignore
// the argument, and callers must not modify the map or the slice.
func (e *Engine) GrowthDistMap(pivots []int32) *metrics.DistMap {
	return e.Cached("distmap", func() any {
		return metrics.NewDistMap(e.s, pivots, e.workers)
	}).(*metrics.DistMap)
}

// GrowthPathStats is the trajectory-mode path-length observation:
// derived from the maintained histogram of the distance map, O(diam)
// per epoch once the map is repaired. Exact mode reproduces
// PathLengthsFrozen over all sources bit for bit — note the whole-graph
// convention, not Measure's giant-component one.
func (e *Engine) GrowthPathStats(pivots []int32) metrics.PathStats {
	dm := e.GrowthDistMap(pivots)
	return e.Cached("growth-paths", func() any {
		return metrics.RefreshPathLengths(dm)
	}).(metrics.PathStats)
}

// GrowthCloseness is the trajectory-mode closeness vector, an O(n)
// reduction of the distance map's reach and distance-sum columns; exact
// mode is bit-identical to ClosenessFrozen.
func (e *Engine) GrowthCloseness(pivots []int32) []float64 {
	dm := e.GrowthDistMap(pivots)
	return e.Cached("growth-closeness", func() any {
		return metrics.RefreshCloseness(dm)
	}).([]float64)
}

// GrowthBetweenness is the trajectory-mode betweenness vector: Brandes
// dependency passes over the map's repaired rows in canonical order,
// sharded across the engine's workers — bit-identical at every worker
// count, exact or n/k-rescaled by the map's mode.
func (e *Engine) GrowthBetweenness(pivots []int32) []float64 {
	dm := e.GrowthDistMap(pivots)
	return e.Cached("growth-betweenness", func() any {
		return metrics.RefreshBetweennessSampled(dm, e.workers)
	}).([]float64)
}

// MeasureGrowthPaths is MeasureGrowth plus the distance family: the
// same delta-maintained structural fields, extended with average path
// length, diameter and mean closeness from the incremental distance
// map. pivots selects the map's source set on its first build (nil for
// exact mode), as in GrowthDistMap.
func (e *Engine) MeasureGrowthPaths(pivots []int32) metrics.GrowthStats {
	out := e.MeasureGrowth()
	if out.N == 0 {
		return out
	}
	dm := e.GrowthDistMap(pivots)
	ps := e.GrowthPathStats(pivots)
	out.PathSources = dm.SourceCount()
	out.AvgPathLen = ps.Avg
	out.Diameter = ps.Diameter
	clo := e.GrowthCloseness(pivots)
	sum := 0.0
	for _, c := range clo {
		sum += c
	}
	out.MeanCloseness = sum / float64(len(clo))
	return out
}
