package engine

import (
	"reflect"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// TestGrowthPathsInheritedAcrossAdvance is the engine-level equivalence
// of the incremental distance map: an engine advanced along a
// trajectory — whose "distmap" entry is repaired in place by the
// inherit hook — must produce the same distance rows, growth-path
// vector and betweenness as a cold engine over a fresh freeze, at every
// epoch.
func TestGrowthPathsInheritedAcrossAdvance(t *testing.T) {
	top, err := gen.BA{N: 280, M: 2}.Generate(rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	replayTrajectory(t, top, 43, func(eng *Engine, g *graph.Graph, d *graph.Delta) {
		epochs++
		cold := New(g.Copy().Freeze(), WithWorkers(testWorkers))
		got, want := eng.MeasureGrowthPaths(nil), cold.MeasureGrowthPaths(nil)
		if got != want {
			t.Fatalf("n=%d: growth path stats %+v vs %+v", g.N(), got, want)
		}
		if got.PathSources != g.N() || got.Diameter <= 0 || got.AvgPathLen <= 0 {
			t.Fatalf("n=%d: degenerate path fields %+v", g.N(), got)
		}
		dm, cm := eng.GrowthDistMap(nil), cold.GrowthDistMap(nil)
		for i := 0; i < dm.SourceCount(); i++ {
			if !reflect.DeepEqual(dm.Dist(i), cm.Dist(i)) {
				t.Fatalf("n=%d: distance row %d diverged", g.N(), i)
			}
		}
		if !reflect.DeepEqual(eng.GrowthBetweenness(nil), cold.GrowthBetweenness(nil)) {
			t.Fatalf("n=%d: betweenness diverged", g.N())
		}
	})
	if epochs < 5 {
		t.Fatalf("trajectory too short: %d epochs", epochs)
	}
}

// TestGrowthPathsSampledPivots pins sampled mode through the engine: a
// fixed pivot set bound on the first build survives Advance, and the
// estimators match a cold sampled map over the same pivots.
func TestGrowthPathsSampledPivots(t *testing.T) {
	top, err := gen.GLP{N: 260, M: 1, P: 0.45, Beta: 0.64}.Generate(rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	var pivots []int32
	replayTrajectory(t, top, 71, func(eng *Engine, g *graph.Graph, d *graph.Delta) {
		if pivots == nil {
			pivots = metrics.PivotSources(rng.New(9), eng.Snapshot().N(), 16)
		}
		st := eng.MeasureGrowthPaths(pivots)
		if st.PathSources != 16 {
			t.Fatalf("pivot count %d, want 16", st.PathSources)
		}
		dm := eng.GrowthDistMap(pivots)
		if !reflect.DeepEqual(dm.Sources(), pivots) {
			t.Fatal("pivot set drifted across Advance")
		}
		cold := metrics.NewDistMap(g.Copy().Freeze(), pivots, 1)
		if got, want := eng.GrowthPathStats(pivots), metrics.RefreshPathLengths(cold); !reflect.DeepEqual(got, want) {
			t.Fatalf("sampled path stats %+v vs %+v", got, want)
		}
		if !reflect.DeepEqual(eng.GrowthCloseness(pivots), metrics.RefreshCloseness(cold)) {
			t.Fatal("sampled closeness diverged")
		}
	})
}

// TestMeasureGrowthPathsEmpty: the zero-node engine keeps the empty
// growth vector, no path fields.
func TestMeasureGrowthPathsEmpty(t *testing.T) {
	eng := New(graph.New(0).Freeze(), WithWorkers(1))
	if st := eng.MeasureGrowthPaths(nil); st.N != 0 || st.PathSources != 0 {
		t.Fatalf("empty engine growth stats %+v", st)
	}
}
