package netmodel

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

// The traffic benchmarks time the flow-level workload simulator over a
// frozen BA map at two pool widths: workers=1 (fully sequential,
// including shortest-path tree construction) versus the sharded tree
// builds. The two runs must be byte-identical — the simulator's
// determinism contract at benchmark scale — and the JSON file records a
// 10k-node smoke row next to the acceptance row at -traffic-bench-n
// (100k by default):
//
//	make bench-traffic            # writes BENCH_traffic.json
//	go test -bench TrafficSim .   # standard benchmark rows
var (
	trafficBenchOut    = flag.String("traffic-bench-out", "", "write sequential-vs-parallel workload timings to this JSON file")
	trafficBenchN      = flag.Int("traffic-bench-n", 100000, "workload acceptance row map size")
	trafficBenchEpochs = flag.Int("traffic-bench-epochs", 10, "workload benchmark epochs")
	trafficBenchFlows  = flag.Int("traffic-bench-flows", 1000, "target flow arrivals per epoch")
)

// trafficBenchSetup freezes a BA map of n nodes and derives the
// workload spec whose mean flow size puts the aggregate arrival rate at
// roughly flows per epoch (load factor fixed at 0.7).
func trafficBenchSetup(tb testing.TB, n, flows int) (*graph.Snapshot, []float64, traffic.WorkloadSpec) {
	tb.Helper()
	top, err := gen.GenerateWith(gen.BA{N: n, M: 2}, rng.New(1), genBenchWorkers)
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := top.G.FreezeChecked()
	if err != nil {
		tb.Fatal(err)
	}
	masses := make([]float64, snap.N())
	for u := range masses {
		masses[u] = float64(snap.Degree(u))
	}
	var capTotal float64
	for _, e := range snap.EdgeList() {
		capTotal += float64(e.W)
	}
	const load = 0.7
	spec := traffic.WorkloadSpec{
		LoadFactor: load,
		Epochs:     *trafficBenchEpochs,
		MeanSize:   load * capTotal / float64(flows),
	}
	return snap, masses, spec
}

// runTrafficSim simulates the workload and returns the report encoded
// as JSON (aggregate report plus the link loads), the identity the
// sequential and parallel runs are compared on.
func runTrafficSim(tb testing.TB, snap *graph.Snapshot, masses []float64, spec traffic.WorkloadSpec, workers int) []byte {
	tb.Helper()
	rep, err := traffic.Simulate(snap, masses, spec, rng.New(7), workers)
	if err != nil {
		tb.Fatal(err)
	}
	if rep.Arrived == 0 {
		tb.Fatal("benchmark workload admitted no flows")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		tb.Fatal(err)
	}
	links, err := json.Marshal(rep.Links)
	if err != nil {
		tb.Fatal(err)
	}
	return append(data, links...)
}

func benchTrafficSim(b *testing.B, workers int) {
	snap, masses, spec := trafficBenchSetup(b, 2000, 100)
	spec.Epochs = 5
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTrafficSim(b, snap, masses, spec, workers)
	}
}

func BenchmarkTrafficSimSequential(b *testing.B) { benchTrafficSim(b, 1) }
func BenchmarkTrafficSimParallel(b *testing.B)   { benchTrafficSim(b, genBenchWorkers) }

// TestTrafficBenchJSON times the workload simulation at both pool
// widths on the 10k smoke map and the acceptance map, checks the runs
// are byte-identical, and records the rows in the JSON file named by
// -traffic-bench-out (BENCH_traffic.json via `make bench-traffic`).
func TestTrafficBenchJSON(t *testing.T) {
	if *trafficBenchOut == "" {
		t.Skip("enable with -traffic-bench-out <file>")
	}
	type row struct {
		Name    string  `json:"name"`
		N       int     `json:"n"`
		Epochs  int     `json:"epochs"`
		Flows   int     `json:"flows_per_epoch"`
		Workers int     `json:"workers"`
		Cores   int     `json:"cores"`
		NsPerOp int64   `json:"ns_per_op"`
		Speedup float64 `json:"speedup,omitempty"`
	}
	// The 10k smoke row accompanies the acceptance row only when the
	// latter is larger, so a small -traffic-bench-n (the CI race smoke)
	// genuinely shrinks the run.
	sizes := []int{*trafficBenchN}
	if *trafficBenchN > 10000 {
		sizes = []int{10000, *trafficBenchN}
	}
	var rows []row
	for _, n := range sizes {
		snap, masses, spec := trafficBenchSetup(t, n, *trafficBenchFlows)
		start := time.Now()
		seq := runTrafficSim(t, snap, masses, spec, 1)
		seqTime := time.Since(start)
		start = time.Now()
		par := runTrafficSim(t, snap, masses, spec, genBenchWorkers)
		parTime := time.Since(start)
		if !bytes.Equal(seq, par) {
			t.Fatalf("n=%d: workers=%d simulation diverged from sequential", n, genBenchWorkers)
		}
		speedup := float64(seqTime) / float64(parTime)
		rows = append(rows,
			row{Name: "traffic-sim-sequential", N: n, Epochs: *trafficBenchEpochs,
				Flows: *trafficBenchFlows, Workers: 1, Cores: runtime.GOMAXPROCS(0),
				NsPerOp: seqTime.Nanoseconds()},
			row{Name: "traffic-sim-parallel", N: n, Epochs: *trafficBenchEpochs,
				Flows: *trafficBenchFlows, Workers: genBenchWorkers, Cores: runtime.GOMAXPROCS(0),
				NsPerOp: parTime.Nanoseconds(), Speedup: speedup})
		t.Logf("n=%d: sequential %v, parallel %v (%.2fx, byte-identical)", n, seqTime, parTime, speedup)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*trafficBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %d traffic benchmark rows to %s\n", len(rows), *trafficBenchOut)
}
