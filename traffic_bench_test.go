package netmodel

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/benchutil"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

// The traffic benchmarks time the flow-level workload simulator over a
// frozen BA map, engine against engine: the epoch loop (the pinned
// reference, full re-waterfill every epoch) versus the event engine
// (arrival/departure calendar, incremental bottleneck re-solve). The
// event engine also runs at two pool widths, and its runs must be
// byte-identical — the determinism contract at benchmark scale. The
// JSON file records a 10k-node smoke row set next to the acceptance
// rows at -traffic-bench-n (100k by default):
//
//	make bench-traffic            # writes BENCH_traffic.json
//	go test -bench TrafficSim .   # standard benchmark rows
//
// -traffic-bench-engine restricts which engine's rows are timed and
// emitted ("both" by default); the cross-engine agreement check always
// runs, so a single-engine CI smoke still pins per-flow completion
// times against the other engine.
var (
	trafficBenchOut    = flag.String("traffic-bench-out", "", "write engine-vs-engine workload timings to this JSON file")
	trafficBenchN      = flag.Int("traffic-bench-n", 100000, "workload acceptance row map size")
	trafficBenchEpochs = flag.Int("traffic-bench-epochs", 10, "workload benchmark epochs")
	trafficBenchFlows  = flag.Int("traffic-bench-flows", 4000, "target flow arrivals per epoch")
	trafficBenchEngine = flag.String("traffic-bench-engine", "both", "engine rows to emit: epoch, event, both")
)

// trafficBenchSetup freezes a BA map of n nodes and derives the
// workload spec whose mean flow size puts the aggregate arrival rate at
// roughly flows per epoch (load factor fixed at 0.7).
func trafficBenchSetup(tb testing.TB, n, flows int) (*graph.Snapshot, []float64, traffic.WorkloadSpec) {
	tb.Helper()
	top, err := gen.GenerateWith(gen.BA{N: n, M: 2}, rng.New(1), genBenchWorkers)
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := top.G.FreezeChecked()
	if err != nil {
		tb.Fatal(err)
	}
	masses := make([]float64, snap.N())
	for u := range masses {
		masses[u] = float64(snap.Degree(u))
	}
	var capTotal float64
	for _, e := range snap.EdgeList() {
		capTotal += float64(e.W)
	}
	const load = 0.7
	spec := traffic.WorkloadSpec{
		LoadFactor: load,
		Epochs:     *trafficBenchEpochs,
		MeanSize:   load * capTotal / float64(flows),
	}
	return snap, masses, spec
}

// runTrafficSim simulates the workload with the given engine and
// returns the traced report plus its JSON encoding (aggregate report
// and link loads), the identity worker-invariance is compared on. A
// non-nil rt shares routing state across runs (identical results, BFS
// paid once) so timed rows measure the engines, not the router.
func runTrafficSim(tb testing.TB, snap *graph.Snapshot, masses []float64, spec traffic.WorkloadSpec, engine string, workers int, rt *traffic.Routing) (*traffic.SimReport, []byte) {
	tb.Helper()
	spec.Engine = engine
	opts := []traffic.SimOption{traffic.WithFlowTrace()}
	if rt != nil {
		opts = append(opts, traffic.WithRouting(rt))
	}
	rep, err := traffic.Simulate(snap, masses, spec, rng.New(7), workers, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	if rep.Arrived == 0 {
		tb.Fatal("benchmark workload admitted no flows")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		tb.Fatal(err)
	}
	links, err := json.Marshal(rep.Links)
	if err != nil {
		tb.Fatal(err)
	}
	return rep, append(data, links...)
}

// checkFlowAgreement asserts the two engines agree on the flow
// population and on every flow's fate and completion time — the
// cross-engine contract the CI smoke runs under the race detector.
func checkFlowAgreement(tb testing.TB, epoch, event *traffic.SimReport) {
	tb.Helper()
	if len(epoch.Flows) != len(event.Flows) {
		tb.Fatalf("engines drew different flow populations: %d vs %d", len(epoch.Flows), len(event.Flows))
	}
	for i := range epoch.Flows {
		a, b := epoch.Flows[i], event.Flows[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.Size != b.Size || a.Arrived != b.Arrived {
			tb.Fatalf("flow %d identity diverged: %+v vs %+v", i, a, b)
		}
		if a.Done != b.Done {
			tb.Fatalf("flow %d fate diverged between engines: epoch done=%v, event done=%v", i, a.Done, b.Done)
		}
		if a.Done {
			scale := math.Max(1, math.Abs(a.Finished))
			if math.Abs(a.Finished-b.Finished) > 1e-9*scale {
				tb.Fatalf("flow %d completion time diverged: epoch %v, event %v", i, a.Finished, b.Finished)
			}
		}
	}
}

func benchTrafficSim(b *testing.B, engine string, workers int) {
	snap, masses, spec := trafficBenchSetup(b, 2000, 100)
	spec.Epochs = 5
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTrafficSim(b, snap, masses, spec, engine, workers, nil)
	}
}

// benchEngine resolves -traffic-bench-engine for the standing
// benchmark rows: "both" (the JSON-emitter default) times the epoch
// engine here, since BenchmarkTrafficSimEvent covers the other.
func benchEngine(b *testing.B) string {
	switch *trafficBenchEngine {
	case "both", "epoch":
		return traffic.EngineEpoch
	case "event":
		return traffic.EngineEvent
	}
	b.Fatalf("-traffic-bench-engine=%q: want epoch, event or both", *trafficBenchEngine)
	return ""
}

func BenchmarkTrafficSimSequential(b *testing.B) { benchTrafficSim(b, benchEngine(b), 1) }
func BenchmarkTrafficSimParallel(b *testing.B) {
	benchTrafficSim(b, benchEngine(b), genBenchWorkers)
}
func BenchmarkTrafficSimEvent(b *testing.B) {
	benchTrafficSim(b, traffic.EngineEvent, genBenchWorkers)
}

// TestTrafficBenchJSON times the workload simulation engine against
// engine on the 10k smoke map and the acceptance map, checks the event
// engine is byte-identical across pool widths and agrees with the
// epoch engine flow by flow, and records the rows in the JSON file
// named by -traffic-bench-out (BENCH_traffic.json via
// `make bench-traffic`).
func TestTrafficBenchJSON(t *testing.T) {
	if *trafficBenchOut == "" {
		t.Skip("enable with -traffic-bench-out <file>")
	}
	timeEpoch, timeEvent := true, true
	switch *trafficBenchEngine {
	case "both":
	case "epoch":
		timeEvent = false
	case "event":
		timeEpoch = false
	default:
		t.Fatalf("-traffic-bench-engine=%q: want epoch, event or both", *trafficBenchEngine)
	}
	type row struct {
		Name        string  `json:"name"`
		Engine      string  `json:"engine"`
		N           int     `json:"n"`
		Epochs      int     `json:"epochs"`
		Flows       int     `json:"flows_per_epoch"`
		Workers     int     `json:"workers"`
		Cores       int     `json:"cores"`
		NumCPU      int     `json:"num_cpu"`
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		Speedup     float64 `json:"speedup,omitempty"`
		SpeedupVs   string  `json:"speedup_vs,omitempty"`
	}
	cores, ncpu := runtime.GOMAXPROCS(0), runtime.NumCPU()
	// The 10k smoke row set accompanies the acceptance rows only when
	// the latter is larger, so a small -traffic-bench-n (the CI race
	// smoke) genuinely shrinks the run.
	sizes := []int{*trafficBenchN}
	if *trafficBenchN > 10000 {
		sizes = []int{10000, *trafficBenchN}
	}
	var rows []row
	for _, n := range sizes {
		snap, masses, spec := trafficBenchSetup(t, n, *trafficBenchFlows)
		// All runs share one routing state, pre-routed by an untimed
		// warmup (both engines draw identical flow populations, so the
		// warmup resolves every OD pair the timed runs will ask for):
		// the timed rows compare the simulation engines, not the
		// shared BFS router both sit on.
		rt := traffic.NewRouting(snap)
		runTrafficSim(t, snap, masses, spec, traffic.EngineEvent, genBenchWorkers, rt)
		// Both engines always run — the agreement check is the point —
		// but only the engines selected by -traffic-bench-engine are
		// reported as timing rows.
		// Each timed run doubles as an allocation window (the settling GC
		// runs before the timer starts, so it never pollutes ns_per_op);
		// the op of allocs_per_op is the same whole run ns_per_op times.
		var epochRep, eventRep *traffic.SimReport
		var eventSeq, eventPar []byte
		var epochTime, eventTime, eventParTime time.Duration
		epochAllocs, epochBytes := benchutil.MeasureAllocs(func() {
			start := time.Now()
			epochRep, _ = runTrafficSim(t, snap, masses, spec, traffic.EngineEpoch, 1, rt)
			epochTime = time.Since(start)
		})
		eventAllocs, eventBytes := benchutil.MeasureAllocs(func() {
			start := time.Now()
			eventRep, eventSeq = runTrafficSim(t, snap, masses, spec, traffic.EngineEvent, 1, rt)
			eventTime = time.Since(start)
		})
		eventParAllocs, eventParBytes := benchutil.MeasureAllocs(func() {
			start := time.Now()
			_, eventPar = runTrafficSim(t, snap, masses, spec, traffic.EngineEvent, genBenchWorkers, rt)
			eventParTime = time.Since(start)
		})
		if !bytes.Equal(eventSeq, eventPar) {
			t.Fatalf("n=%d: event engine at workers=%d diverged from workers=1", n, genBenchWorkers)
		}
		checkFlowAgreement(t, epochRep, eventRep)
		eventVsEpoch := float64(epochTime) / float64(eventTime)
		if timeEpoch {
			rows = append(rows, row{Name: "traffic-sim-epoch", Engine: traffic.EngineEpoch,
				N: n, Epochs: *trafficBenchEpochs, Flows: *trafficBenchFlows,
				Workers: 1, Cores: cores, NumCPU: ncpu, NsPerOp: epochTime.Nanoseconds(),
				AllocsPerOp: float64(epochAllocs), BytesPerOp: float64(epochBytes)})
		}
		if timeEvent {
			rows = append(rows,
				row{Name: "traffic-sim-event", Engine: traffic.EngineEvent,
					N: n, Epochs: *trafficBenchEpochs, Flows: *trafficBenchFlows,
					Workers: 1, Cores: cores, NumCPU: ncpu, NsPerOp: eventTime.Nanoseconds(),
					AllocsPerOp: float64(eventAllocs), BytesPerOp: float64(eventBytes),
					Speedup: eventVsEpoch, SpeedupVs: "traffic-sim-epoch"},
				row{Name: "traffic-sim-event-parallel", Engine: traffic.EngineEvent,
					N: n, Epochs: *trafficBenchEpochs, Flows: *trafficBenchFlows,
					Workers: genBenchWorkers, Cores: cores, NumCPU: ncpu, NsPerOp: eventParTime.Nanoseconds(),
					AllocsPerOp: float64(eventParAllocs), BytesPerOp: float64(eventParBytes),
					Speedup: float64(eventTime) / float64(eventParTime), SpeedupVs: "traffic-sim-event"})
		}
		t.Logf("n=%d: epoch %v, event %v (%.2fx), event@%d %v (byte-identical, flows agree)",
			n, epochTime, eventTime, eventVsEpoch, genBenchWorkers, eventParTime)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*trafficBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %d traffic benchmark rows to %s\n", len(rows), *trafficBenchOut)
}
