# Mirrors .github/workflows/ci.yml: `make ci` is the full gate.

GO ?= go

.PHONY: all build test bench lint fmt ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark matrix (E1-E12 plus the engine comparisons); one
# iteration each, the CI smoke configuration. For real measurements
# drop -benchtime or raise it.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint test bench
