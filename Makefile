# Mirrors .github/workflows/ci.yml: `make ci` is the full gate.

GO ?= go

.PHONY: all build test bench bench-gen bench-trajectory bench-sweep bench-cache bench-traffic bench-failures bench-kernels bench-check staticcheck lint fmt ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark matrix (E1-E12 plus the engine comparisons); one
# iteration each, the CI smoke configuration. For real measurements
# drop -benchtime or raise it.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x ./...

# Generator smoke: one iteration of the sharded-vs-sequential 10k-node
# BA/GLP/PFP and econ rows, the CI gate for the sharded kernels. For
# real speedup numbers (100k rows, multi-core) run
#   go test -run '^$$' -bench 'Gen.*100k' -benchmem .
bench-gen:
	$(GO) test -run '^$$' -bench 'GenBA10k|GenGLP10k|GenPFP10k|GenEcon' -benchmem -benchtime=1x .

# Trajectory acceptance: the same 100k-node BA growth run observed at
# 100 epochs, measured via delta-refreshed snapshots (refresh) vs a
# full freeze per epoch (refreeze), plus the path-metric rows (the
# delta-repaired distance map vs cold pivot BFS per epoch) and the
# routing rows (shortest-path tree repair vs cold rebuild). Timings
# land in BENCH_trajectory.json; the CI smoke runs the 10k variant
# under -race.
bench-trajectory:
	$(GO) test -run TestTrajectoryBenchJSON -trajectory-bench-out BENCH_trajectory.json .

# Sweep smoke: the (ba,glp,pfp) × 4-seed grid at 2000 nodes, cells run
# sequentially vs fanned across the pool, byte-identical summaries
# checked and timings recorded in BENCH_sweep.json. The CI smoke runs a
# smaller grid; for real speedups raise -sweep-bench-n.
bench-sweep:
	$(GO) test -run TestSweepBenchJSON -sweep-bench-out BENCH_sweep.json .

# Cache acceptance: one BA topology fanned out to 8 workload variants,
# swept cold (artifact cache disabled) vs warm (all stages served from
# a primed cache), summaries asserted byte-identical, cold/warm rows
# merged into BENCH_sweep.json at the 10k smoke and 100k acceptance
# sizes. The warm row's speedup is gated by the sweep-cache-warm floor;
# the CI smoke runs a 2k variant under -race.
bench-cache:
	$(GO) test -run TestCacheBenchJSON -cache-bench-out BENCH_sweep.json .

# Workload acceptance: the flow-level simulator over a frozen BA map
# at 10k (smoke) and 100k (acceptance) nodes, epoch engine vs event
# engine over pre-routed flows, event-engine pool widths checked
# byte-identical and cross-engine per-flow completion times asserted,
# timings recorded in BENCH_traffic.json. The CI smoke runs a 2k
# variant under -race, once per engine.
bench-traffic:
	$(GO) test -run TestTrafficBenchJSON -traffic-bench-out BENCH_traffic.json .

# Failure acceptance: an outage/repair replay (2 random links down per
# epoch, revived two epochs later) over a 100k-node BA map, warm
# routing trees and a warm distance map maintained via the delta-scoped
# removal-repair paths (repair) vs cold rebuilds per failure epoch
# (rebuild). Timings land in BENCH_failures.json; the CI smoke runs
# the 10k variant under -race.
bench-failures:
	$(GO) test -run TestFailuresBenchJSON -failures-bench-out BENCH_failures.json .

# Kernel acceptance: the zero-alloc hot-path rows. Cold shortest-path
# tree builds over a degree-8 BA map, classic queue BFS vs the
# direction-optimizing hybrid (10k smoke row plus the acceptance size,
# 100k by default, where the hybrid must clear its 2x floor), then the
# steady-state rows the allocation ceilings gate: per-epoch marginal
# allocations of both simulation engines and per-refresh allocations of
# the warm distance map and routing state under edge churn. Rows land
# in BENCH_kernels.json; the CI smoke runs the 10k variant under -race.
bench-kernels:
	$(GO) test ./internal/traffic/ -run TestKernelsBenchJSON -kernels-bench-out $(CURDIR)/BENCH_kernels.json

# Benchmark-regression gate: the speedup fields of the BENCH_*.json
# files in the working tree must clear the committed floors in
# bench_floors.json. Floors scoped by min_n/min_cores skip rows from
# smoke configs and few-core boxes; required floors must find their
# acceptance-scale row.
bench-check:
	$(GO) run ./cmd/benchcheck -floors bench_floors.json

# staticcheck is pinned in CI (installed into the runner's Go bin);
# locally this uses whatever staticcheck is on PATH and explains how
# to get one when absent.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; run:" >&2; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2025.1.1" >&2; exit 1; }
	staticcheck ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint test bench bench-check
