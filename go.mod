module netmodel

go 1.24
