package netmodel

import (
	"bytes"
	"fmt"
	"testing"

	"netmodel/internal/core"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// runTrajectoryPathsObserved drives one BA growth run (sequential
// generation, so every call replays the identical arrival sequence) and
// returns the observer's epochs measured with path metrics at the given
// engine pool width.
func runTrajectoryPathsObserved(tb testing.TB, n, every, workers, pivots int) []core.TrajectoryPoint {
	tb.Helper()
	obs := core.NewTrajectoryObserver(workers)
	obs.EnablePathMetrics(pivots, 1)
	_, err := gen.BA{N: n, M: 2}.GenerateTrajectory(rng.New(1), 1, gen.Trajectory{
		Every:   every,
		Observe: obs.Observe,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return obs.Points()
}

// TestTrajectoryPathsByteIdentity is the end-to-end determinism and
// equivalence gate of the incremental distance engine: the rendered
// trajectory table with path metrics must be byte-identical at every
// worker count, and every epoch's stats must equal a full recompute —
// a cold engine on a fresh freeze — of the same graph.
func TestTrajectoryPathsByteIdentity(t *testing.T) {
	n, every := 2000, 320
	if testing.Short() {
		n, every = 800, 130
	}

	render := func(points []core.TrajectoryPoint) string {
		var buf bytes.Buffer
		if err := core.WriteTrajectory(&buf, points); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := runTrajectoryPathsObserved(t, n, every, 1, 0)
	if len(ref) < 4 {
		t.Fatalf("only %d epochs observed", len(ref))
	}
	refTable := render(ref)
	for _, w := range []int{2, 4, 8} {
		if got := render(runTrajectoryPathsObserved(t, n, every, w, 0)); got != refTable {
			t.Fatalf("trajectory table at %d workers differs from 1 worker:\n%s\nvs\n%s", w, got, refTable)
		}
	}

	// Full-recompute baseline: replay the identical growth run, cold
	// engine + exact distance map per epoch, and compare stats epoch by
	// epoch.
	i := 0
	_, err := gen.BA{N: n, M: 2}.GenerateTrajectory(rng.New(1), 1, gen.Trajectory{
		Every: every,
		Observe: func(g *graph.Graph, nn int) error {
			eng := engine.New(g.Copy().Freeze(), engine.WithWorkers(2))
			want := eng.MeasureGrowthPaths(nil)
			if i >= len(ref) {
				return fmt.Errorf("baseline observed more epochs than the trajectory run")
			}
			if got := ref[i].Stats; got != want {
				return fmt.Errorf("epoch %d (n=%d): refreshed stats %+v vs full recompute %+v", i, nn, got, want)
			}
			i++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(ref) {
		t.Fatalf("baseline replay observed %d epochs, trajectory %d", i, len(ref))
	}
}

// TestTrajectoryPathsSampledWorkerInvariance repeats the worker matrix
// in sampled-pivot mode, where betweenness-style group merges and the
// pivot draw could otherwise smuggle in pool-width dependence.
func TestTrajectoryPathsSampledWorkerInvariance(t *testing.T) {
	n, every := 1200, 200
	if testing.Short() {
		n, every = 600, 100
	}
	ref := runTrajectoryPathsObserved(t, n, every, 1, 48)
	for _, p := range ref {
		if p.Stats.PathSources != 48 {
			t.Fatalf("epoch pivot count %d, want 48", p.Stats.PathSources)
		}
	}
	for _, w := range []int{2, 4, 8} {
		got := runTrajectoryPathsObserved(t, n, every, w, 48)
		if len(got) != len(ref) {
			t.Fatalf("%d workers: %d epochs vs %d", w, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%d workers: epoch %d diverged: %+v vs %+v", w, i, got[i], ref[i])
			}
		}
	}
}
