package netmodel

import (
	"bytes"
	"flag"
	"fmt"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/benchutil"
	"netmodel/internal/graphio"
	"netmodel/internal/sweep"
)

// The sweep benchmarks measure the cell-fan-out speedup: the same
// (ba, glp, pfp) × seeds grid executed with cells in sequence
// (workers=1) versus cells spread across the pool — the many-maps
// workload toposweep serves. Cells are embarrassingly parallel and
// seed-split streams make the fold order-free, so the speedup should
// track the core count until memory bandwidth bites:
//
//	make bench-sweep            # writes BENCH_sweep.json
//	go test -bench SweepCells . # standard benchmark rows
var (
	sweepBenchOut   = flag.String("sweep-bench-out", "", "write sequential-vs-parallel sweep timings to this JSON file")
	sweepBenchN     = flag.Int("sweep-bench-n", 2000, "sweep benchmark cell size")
	sweepBenchSeeds = flag.Int("sweep-bench-seeds", 4, "sweep benchmark seeds per model")
)

// sweepBenchGrid is the benchmark workload: the acceptance-criterion
// model trio at one size, PathSources capped so the cell cost is
// dominated by generation + whole-graph metrics.
func sweepBenchGrid(n, seeds int) sweep.Grid {
	sd := make([]uint64, seeds)
	for i := range sd {
		sd[i] = uint64(i + 1)
	}
	return sweep.Grid{
		Models:      []string{"ba", "glp", "pfp"},
		Sizes:       []int{n},
		Seeds:       sd,
		PathSources: 100,
	}
}

func runSweepBench(tb testing.TB, g sweep.Grid, workers int) *sweep.Summary {
	tb.Helper()
	s, err := sweep.Run(g, workers)
	if err != nil {
		tb.Fatal(err)
	}
	if len(s.Cells) != len(g.Models)*len(g.Sizes)*len(g.Seeds) {
		tb.Fatalf("sweep ran %d cells", len(s.Cells))
	}
	return s
}

func benchSweepCells(b *testing.B, workers int) {
	g := sweepBenchGrid(1000, 2)
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepBench(b, g, workers)
	}
}

func BenchmarkSweepCellsSequential(b *testing.B) { benchSweepCells(b, 1) }
func BenchmarkSweepCellsParallel(b *testing.B)   { benchSweepCells(b, genBenchWorkers) }

// TestSweepBenchJSON times the grid at both pool widths, checks the
// two summaries are byte-identical (the sweep determinism contract at
// benchmark scale), and records the rows in the JSON file named by
// -sweep-bench-out (BENCH_sweep.json via `make bench-sweep`).
func TestSweepBenchJSON(t *testing.T) {
	if *sweepBenchOut == "" {
		t.Skip("enable with -sweep-bench-out <file>")
	}
	g := sweepBenchGrid(*sweepBenchN, *sweepBenchSeeds)
	workers := genBenchWorkers

	encode := func(s *sweep.Summary) []byte {
		var buf bytes.Buffer
		if err := graphio.WriteSweepJSON(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Each timed run doubles as an allocation window; the settling GC
	// runs before the timer starts, so ns_per_op stays clean and the op
	// of allocs_per_op is the same whole-grid run.
	var seq, par *sweep.Summary
	var seqTime, parTime time.Duration
	seqAllocs, seqBytes := benchutil.MeasureAllocs(func() {
		start := time.Now()
		seq = runSweepBench(t, g, 1)
		seqTime = time.Since(start)
	})
	parAllocs, parBytes := benchutil.MeasureAllocs(func() {
		start := time.Now()
		par = runSweepBench(t, g, workers)
		parTime = time.Since(start)
	})
	if !bytes.Equal(encode(seq), encode(par)) {
		t.Fatalf("workers=%d summary diverged from sequential", workers)
	}
	speedup := float64(seqTime) / float64(parTime)

	type row struct {
		Name        string  `json:"name"`
		Models      string  `json:"models"`
		N           int     `json:"n"`
		Seeds       int     `json:"seeds"`
		Cells       int     `json:"cells"`
		Workers     int     `json:"workers"`
		Cores       int     `json:"cores"`
		NumCPU      int     `json:"num_cpu"`
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		Speedup     float64 `json:"speedup,omitempty"`
	}
	models := fmt.Sprintf("%v", g.Models)
	rows := []row{
		{Name: "sweep-sequential-cells", Models: models, N: *sweepBenchN, Seeds: *sweepBenchSeeds,
			Cells: len(seq.Cells), Workers: 1, Cores: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			NsPerOp:     seqTime.Nanoseconds(),
			AllocsPerOp: float64(seqAllocs), BytesPerOp: float64(seqBytes)},
		{Name: "sweep-parallel-cells", Models: models, N: *sweepBenchN, Seeds: *sweepBenchSeeds,
			Cells: len(par.Cells), Workers: workers, Cores: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			NsPerOp:     parTime.Nanoseconds(),
			AllocsPerOp: float64(parAllocs), BytesPerOp: float64(parBytes), Speedup: speedup},
	}
	if err := benchutil.MergeBenchRows(*sweepBenchOut, rows); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d seeds=%d cells=%d: sequential %v, %d workers %v, speedup %.2fx",
		*sweepBenchN, *sweepBenchSeeds, len(seq.Cells), seqTime, workers, parTime, speedup)
}
