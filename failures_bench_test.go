package netmodel

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/benchutil"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

// The failure benchmarks are the acceptance surface of scoped removal
// repair: the same outage/repair schedule (random links going down
// every epoch and coming back two epochs later — an MTTR-2 on/off
// process) replayed against a warm routing state and a warm distance
// map, measured either by the delta-scoped Refresh paths (repair) or
// by a cold rebuild per failure epoch (what every survivability study
// cost before this change). Only the maintenance work is timed; the
// replay and Refreeze cost is common to both arms. The 10k rows are
// the CI smoke; the 100k rows are the acceptance scale (target >= 2x):
//
//	make bench-failures          # writes BENCH_failures.json
//	go test -bench Failure .     # standard benchmark rows
var (
	failBenchOut    = flag.String("failures-bench-out", "", "write repair-vs-rebuild failure timings to this JSON file")
	failBenchN      = flag.Int("failures-bench-n", 100000, "failure benchmark map size")
	failBenchEpochs = flag.Int("failures-bench-epochs", 40, "failure benchmark outage epochs")
	failBenchLinks  = flag.Int("failures-bench-links", 2, "links failed per outage epoch")
)

// failBenchSources mirrors routingBenchSources: enough warm trees and
// distance rows that repair work dominates bookkeeping at 100k nodes.
const failBenchSources = 24

// failBenchM is the BA edge density of the benchmark map. Routing
// removal repair is tree-scoped — a tree is rebuilt cold exactly when
// one of its own n-1 parent arcs died — so the win per epoch is the
// fraction of warm trees a random outage misses, (1 - (n-1)/m)^links.
// M=4 with 2 links down per epoch is the representative outage regime
// (small simultaneous failure counts on a denser-than-tree map); at
// M=2 half of all links are parent arcs of any given tree and any
// repair scheme degenerates to a rebuild.
const failBenchM = 4

// failureChurn drives one outage/repair replay over a frozen BA map:
// each epoch fails `links` random live links and revives the links
// failed two epochs earlier, then hands the refrozen snapshot and its
// delta to `maintain`, whose cost is the only thing accumulated. The
// schedule is a pure function of the seed, so repair and rebuild arms
// replay identical deltas. Alongside the maintenance time it returns
// the heap allocations (count, bytes) of the same windows.
func failureChurn(tb testing.TB, n, epochs, links int,
	maintain func(next *graph.Snapshot, d *graph.Delta) error) (time.Duration, uint64, uint64) {
	tb.Helper()
	top, err := gen.BA{N: n, M: failBenchM}.Generate(rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	g := top.G
	prev, err := g.FreezeChecked()
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(7)
	var downPrev, downCur []graph.Edge
	var spent time.Duration
	var allocs, bytes uint64
	for epoch := 0; epoch < epochs; epoch++ {
		// Revive the links failed two epochs ago...
		for _, e := range downPrev {
			g.MustAddEdge(e.U, e.V)
		}
		downPrev = downCur
		// ...and fail a fresh random sample of live links (a fresh
		// slice: downPrev aliases the old backing array).
		edges := prev.EdgeList()
		downCur = make([]graph.Edge, 0, links)
		for len(downCur) < links {
			e := edges[r.Intn(len(edges))]
			if !g.HasEdge(e.U, e.V) {
				continue
			}
			if err := g.RemoveEdge(e.U, e.V); err != nil {
				tb.Fatal(err)
			}
			downCur = append(downCur, e)
		}
		next, d, err := g.Refreeze(prev)
		if err != nil {
			tb.Fatal(err)
		}
		prev = next
		a, b := benchutil.CountAllocs(func() {
			start := time.Now()
			if err := maintain(next, d); err != nil {
				tb.Fatal(err)
			}
			spent += time.Since(start)
		})
		allocs += a
		bytes += b
	}
	return spent, allocs, bytes
}

// runFailureRoutingBench keeps failBenchSources shortest-path trees
// warm across the outage replay — by scoped Routing.Refresh (repair:
// only trees that lost a parent arc are rebuilt) or by a cold
// NewRouting + Ensure per failure epoch (rebuild).
func runFailureRoutingBench(tb testing.TB, n, epochs, links, workers int, repair bool) (time.Duration, uint64, uint64) {
	tb.Helper()
	sources := make([]int, failBenchSources)
	for i := range sources {
		sources[i] = i
	}
	var rt *traffic.Routing
	return failureChurn(tb, n, epochs, links, func(next *graph.Snapshot, d *graph.Delta) error {
		if repair {
			if rt == nil {
				rt = traffic.NewRouting(next)
			} else {
				rt.Refresh(next, d, workers)
			}
			rt.Ensure(sources, workers)
		} else {
			cold := traffic.NewRouting(next)
			cold.Ensure(sources, workers)
		}
		return nil
	})
}

// runFailureDistMapBench keeps a failBenchSources-row distance map
// warm across the same replay — by the delta-scoped DistMap.Refresh
// removal path (repair) or a cold NewDistMap per failure epoch
// (rebuild).
func runFailureDistMapBench(tb testing.TB, n, epochs, links, workers int, repair bool) (time.Duration, uint64, uint64) {
	tb.Helper()
	var dm *metrics.DistMap
	return failureChurn(tb, n, epochs, links, func(next *graph.Snapshot, d *graph.Delta) error {
		if repair {
			if dm == nil {
				dm = metrics.NewDistMapSampled(next, rng.New(3), failBenchSources, workers)
			} else {
				dm.Refresh(next, d, workers)
			}
		} else {
			if dm == nil {
				dm = metrics.NewDistMapSampled(next, rng.New(3), failBenchSources, workers)
			} else {
				dm = metrics.NewDistMap(next, dm.Sources(), workers)
			}
		}
		return nil
	})
}

func benchFailureRouting(b *testing.B, n, epochs, links int, repair bool) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFailureRoutingBench(b, n, epochs, links, genBenchWorkers, repair)
	}
}

func benchFailureDistMap(b *testing.B, n, epochs, links int, repair bool) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFailureDistMapBench(b, n, epochs, links, genBenchWorkers, repair)
	}
}

func BenchmarkFailureRoutingRepair10k(b *testing.B)  { benchFailureRouting(b, 10000, 10, 2, true) }
func BenchmarkFailureRoutingRebuild10k(b *testing.B) { benchFailureRouting(b, 10000, 10, 2, false) }
func BenchmarkFailureDistMapRepair10k(b *testing.B)  { benchFailureDistMap(b, 10000, 10, 2, true) }
func BenchmarkFailureDistMapRebuild10k(b *testing.B) { benchFailureDistMap(b, 10000, 10, 2, false) }

// TestFailuresBenchJSON times both arms of both subsystems once and
// records the rows in the JSON file named by -failures-bench-out
// (BENCH_failures.json via `make bench-failures`). Disabled unless the
// flag is set; the CI smoke runs the 10k variant under -race, so the
// file also documents that the removal-repair paths are race-clean.
func TestFailuresBenchJSON(t *testing.T) {
	if *failBenchOut == "" {
		t.Skip("enable with -failures-bench-out <file>")
	}
	n, epochs, links := *failBenchN, *failBenchEpochs, *failBenchLinks
	workers := genBenchWorkers

	routRebuild, routRebuildAllocs, routRebuildBytes := runFailureRoutingBench(t, n, epochs, links, workers, false)
	routRepair, routRepairAllocs, routRepairBytes := runFailureRoutingBench(t, n, epochs, links, workers, true)
	routSpeedup := float64(routRebuild) / float64(routRepair)

	distRebuild, distRebuildAllocs, distRebuildBytes := runFailureDistMapBench(t, n, epochs, links, workers, false)
	distRepair, distRepairAllocs, distRepairBytes := runFailureDistMapBench(t, n, epochs, links, workers, true)
	distSpeedup := float64(distRebuild) / float64(distRepair)

	type row struct {
		Name        string  `json:"name"`
		Model       string  `json:"model"`
		N           int     `json:"n"`
		Epochs      int     `json:"epochs"`
		Links       int     `json:"links"`
		Workers     int     `json:"workers"`
		Cores       int     `json:"cores"`
		NumCPU      int     `json:"num_cpu"`
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		Speedup     float64 `json:"speedup,omitempty"`
		// SpeedupVs names the row the speedup is measured against, so
		// every attribution in the file is explicit.
		SpeedupVs string `json:"speedup_vs,omitempty"`
	}
	cores, ncpu := runtime.GOMAXPROCS(0), runtime.NumCPU()
	rows := []row{
		{Name: "failure-routing-rebuild", Model: "ba", N: n, Epochs: epochs, Links: links,
			Workers: workers, Cores: cores, NumCPU: ncpu, NsPerOp: routRebuild.Nanoseconds(),
			AllocsPerOp: float64(routRebuildAllocs), BytesPerOp: float64(routRebuildBytes)},
		{Name: "failure-routing-repair", Model: "ba", N: n, Epochs: epochs, Links: links,
			Workers: workers, Cores: cores, NumCPU: ncpu, NsPerOp: routRepair.Nanoseconds(),
			AllocsPerOp: float64(routRepairAllocs), BytesPerOp: float64(routRepairBytes),
			Speedup: routSpeedup, SpeedupVs: "failure-routing-rebuild"},
		{Name: "failure-distmap-rebuild", Model: "ba", N: n, Epochs: epochs, Links: links,
			Workers: workers, Cores: cores, NumCPU: ncpu, NsPerOp: distRebuild.Nanoseconds(),
			AllocsPerOp: float64(distRebuildAllocs), BytesPerOp: float64(distRebuildBytes)},
		{Name: "failure-distmap-repair", Model: "ba", N: n, Epochs: epochs, Links: links,
			Workers: workers, Cores: cores, NumCPU: ncpu, NsPerOp: distRepair.Nanoseconds(),
			AllocsPerOp: float64(distRepairAllocs), BytesPerOp: float64(distRepairBytes),
			Speedup: distSpeedup, SpeedupVs: "failure-distmap-rebuild"},
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*failBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d epochs=%d links=%d workers=%d", n, epochs, links, workers)
	t.Logf("routing (%d trees): rebuild %v, repair %v, speedup %.2fx",
		failBenchSources, routRebuild, routRepair, routSpeedup)
	t.Logf("distmap (%d sources): rebuild %v, repair %v, speedup %.2fx",
		failBenchSources, distRebuild, distRepair, distSpeedup)
}
