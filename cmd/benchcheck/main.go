// Command benchcheck is the CI benchmark-regression gate: it compares
// the speedup fields of emitted BENCH_*.json files against committed
// floors and fails when a speedup regresses below its floor. A floor
// may instead (or additionally) carry an allocation ceiling —
// max_allocs_per_op / max_bytes_per_op — gating the row's recorded
// allocs_per_op / bytes_per_op from above, which is how the zero-alloc
// steady-state guarantees of the traffic engines stay enforced.
//
// Usage:
//
//	benchcheck -floors bench_floors.json            # gate the committed files
//	benchcheck -floors bench_floors.json -require-all
//
// The floor file is a list of constraints, each naming a benchmark
// file, a row name, and a minimum speedup. Floors can be scoped with
// min_n (rows from smaller runs are not gated — CI smoke configs
// shrink -bench-n far below acceptance scale) and min_cores (parallel
// -scaling floors are meaningless on boxes with fewer cores; rows
// record the GOMAXPROCS they ran under). A floor with no eligible row
// is reported as skipped, unless the floor sets "require": true (for
// algorithmic floors the committed acceptance-scale files must always
// satisfy) or -require-all promotes every skip to a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"netmodel/internal/cliutil"
)

// Floor is one regression constraint against one benchmark file.
type Floor struct {
	// File names the benchmark JSON file, relative to -dir.
	File string `json:"file"`
	// Name selects rows by their "name" field.
	Name string `json:"name"`
	// MinN scopes the floor to rows with n >= MinN (0 = all rows).
	MinN int `json:"min_n,omitempty"`
	// MinCores scopes the floor to rows whose recorded GOMAXPROCS is
	// at least MinCores (0 = all rows).
	MinCores int `json:"min_cores,omitempty"`
	// MinSpeedup is the classic floor: every eligible row's "speedup"
	// must be at least this. Optional (0) when the floor carries a
	// ceiling instead.
	MinSpeedup float64 `json:"min_speedup,omitempty"`
	// MaxAllocsPerOp / MaxBytesPerOp are ceilings: every eligible row's
	// "allocs_per_op" / "bytes_per_op" must be at most this. A row that
	// does not record the gated field fails the ceiling — an emitter
	// that silently stops measuring must not pass vacuously.
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op,omitempty"`
	MaxBytesPerOp  *float64 `json:"max_bytes_per_op,omitempty"`
	// Require makes a floor with no eligible row a failure instead of
	// a skip — for floors that must always find their row (algorithmic
	// speedups recorded at acceptance scale in the committed files).
	// Leave false for min_cores-scoped floors, which legitimately have
	// no eligible row on few-core machines.
	Require bool `json:"require,omitempty"`
	// Note documents what the floor protects; echoed on failure.
	Note string `json:"note,omitempty"`
}

type floorFile struct {
	Floors []Floor `json:"floors"`
}

// row is the benchmark-row subset benchcheck interprets. Emitters
// write richer rows; unknown fields are ignored.
type row struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	Cores   int     `json:"cores"`
	Speedup float64 `json:"speedup"`
	// Pointers, not values: a ceiling against a row that omits the
	// field must fail, and only the emitter's explicit 0 may pass a
	// zero-alloc ceiling.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	floorsPath := fs.String("floors", "bench_floors.json", "floor file (JSON)")
	dir := fs.String("dir", ".", "directory holding the BENCH_*.json files")
	requireAll := fs.Bool("require-all", false, "fail floors with no eligible row instead of skipping them")
	lenient := fs.Bool("lenient", false, "downgrade required floors with no eligible row to skips (for gating smoke-scale emissions)")
	prof := cliutil.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requireAll && *lenient {
		return fmt.Errorf("-require-all and -lenient contradict each other; pick one")
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	data, err := os.ReadFile(*floorsPath)
	if err != nil {
		return err
	}
	var ff floorFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return fmt.Errorf("%s: %w", *floorsPath, err)
	}
	if len(ff.Floors) == 0 {
		return fmt.Errorf("%s: no floors", *floorsPath)
	}
	rowsByFile := map[string][]row{}
	var failures int
	for _, fl := range ff.Floors {
		if fl.File == "" || fl.Name == "" {
			return fmt.Errorf("%s: floor %+v needs file and name", *floorsPath, fl)
		}
		if fl.MinSpeedup <= 0 && fl.MaxAllocsPerOp == nil && fl.MaxBytesPerOp == nil {
			return fmt.Errorf("%s: floor %s/%s needs a positive min_speedup or a ceiling (max_allocs_per_op / max_bytes_per_op)",
				*floorsPath, fl.File, fl.Name)
		}
		rows, ok := rowsByFile[fl.File]
		if !ok {
			data, err := os.ReadFile(filepath.Join(*dir, fl.File))
			if err != nil {
				return err
			}
			if err := json.Unmarshal(data, &rows); err != nil {
				return fmt.Errorf("%s: %w", fl.File, err)
			}
			rowsByFile[fl.File] = rows
		}
		eligible := 0
		for _, r := range rows {
			if r.Name != fl.Name || r.N < fl.MinN || r.Cores < fl.MinCores {
				continue
			}
			eligible++
			fail := func(format string, a ...any) {
				failures++
				fmt.Fprintf(stdout, "FAIL %s %s (n=%d cores=%d): ", fl.File, fl.Name, r.N, r.Cores)
				fmt.Fprintf(stdout, format, a...)
				if fl.Note != "" {
					fmt.Fprintf(stdout, " — %s", fl.Note)
				}
				fmt.Fprintln(stdout)
			}
			bad := false
			if fl.MinSpeedup > 0 && r.Speedup < fl.MinSpeedup {
				fail("speedup %.3f < floor %.3f", r.Speedup, fl.MinSpeedup)
				bad = true
			}
			if c := fl.MaxAllocsPerOp; c != nil {
				switch {
				case r.AllocsPerOp == nil:
					fail("row records no allocs_per_op but a ceiling of %g is set", *c)
					bad = true
				case *r.AllocsPerOp > *c:
					fail("allocs_per_op %g > ceiling %g", *r.AllocsPerOp, *c)
					bad = true
				}
			}
			if c := fl.MaxBytesPerOp; c != nil {
				switch {
				case r.BytesPerOp == nil:
					fail("row records no bytes_per_op but a ceiling of %g is set", *c)
					bad = true
				case *r.BytesPerOp > *c:
					fail("bytes_per_op %g > ceiling %g", *r.BytesPerOp, *c)
					bad = true
				}
			}
			if bad {
				continue
			}
			fmt.Fprintf(stdout, "ok   %s %s (n=%d cores=%d):", fl.File, fl.Name, r.N, r.Cores)
			if fl.MinSpeedup > 0 {
				fmt.Fprintf(stdout, " speedup %.3f >= %.3f", r.Speedup, fl.MinSpeedup)
			}
			if fl.MaxAllocsPerOp != nil {
				fmt.Fprintf(stdout, " allocs/op %g <= %g", *r.AllocsPerOp, *fl.MaxAllocsPerOp)
			}
			if fl.MaxBytesPerOp != nil {
				fmt.Fprintf(stdout, " B/op %g <= %g", *r.BytesPerOp, *fl.MaxBytesPerOp)
			}
			fmt.Fprintln(stdout)
		}
		if eligible == 0 {
			if *requireAll || (fl.Require && !*lenient) {
				failures++
				fmt.Fprintf(stdout, "FAIL %s %s: no eligible row (min_n=%d min_cores=%d) and the floor is required\n",
					fl.File, fl.Name, fl.MinN, fl.MinCores)
			} else {
				fmt.Fprintf(stdout, "skip %s %s: no eligible row (min_n=%d min_cores=%d)\n",
					fl.File, fl.Name, fl.MinN, fl.MinCores)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d floor(s) violated", failures)
	}
	return prof.Stop()
}
