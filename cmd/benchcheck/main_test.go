package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBenchDir lays out a floor file and one benchmark file in a
// temp dir and returns their paths.
func writeBenchDir(t *testing.T, floors, bench string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	fp := filepath.Join(dir, "floors.json")
	if err := os.WriteFile(fp, []byte(floors), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, fp
}

const benchRows = `[
  {"name": "fast-path", "n": 100000, "cores": 1, "speedup": 12.5},
  {"name": "fast-path", "n": 10000, "cores": 1, "speedup": 2.0},
  {"name": "parallel-path", "n": 100000, "cores": 1, "speedup": 1.01}
]`

func TestFloorHolds(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "fast-path", "min_n": 50000, "min_speedup": 10}
	]}`, benchRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err != nil {
		t.Fatalf("floor should hold: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok   BENCH_x.json fast-path") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
	// min_n must exclude the 10k smoke row, whose 2.0 is below floor.
	if strings.Count(out.String(), "fast-path") != 1 {
		t.Fatalf("smoke row not excluded by min_n:\n%s", out.String())
	}
}

func TestFloorViolated(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "fast-path", "min_speedup": 3, "note": "why it matters"}
	]}`, benchRows)
	var out bytes.Buffer
	err := run([]string{"-floors", fp, "-dir", dir}, &out)
	if err == nil {
		t.Fatalf("10k row at 2.0 must violate the unscoped floor of 3:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BENCH_x.json fast-path (n=10000") ||
		!strings.Contains(out.String(), "why it matters") {
		t.Fatalf("missing FAIL line with note:\n%s", out.String())
	}
}

func TestMinCoresSkips(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "parallel-path", "min_cores": 4, "min_speedup": 1.5}
	]}`, benchRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err != nil {
		t.Fatalf("1-core row must be skipped by min_cores=4: %v", err)
	}
	if !strings.Contains(out.String(), "skip BENCH_x.json parallel-path") {
		t.Fatalf("missing skip line:\n%s", out.String())
	}
	// ...unless -require-all turns the skip into a failure.
	out.Reset()
	if err := run([]string{"-floors", fp, "-dir", dir, "-require-all"}, &out); err == nil {
		t.Fatalf("-require-all must fail on a skipped floor:\n%s", out.String())
	}
}

func TestPerFloorRequire(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "fast-path", "min_n": 500000, "min_speedup": 10, "require": true}
	]}`, benchRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err == nil {
		t.Fatalf("required floor with no eligible row must fail:\n%s", out.String())
	}
	// -lenient downgrades the required-but-missing floor to a skip —
	// the mode CI uses against freshly emitted smoke-scale files.
	out.Reset()
	if err := run([]string{"-floors", fp, "-dir", dir, "-lenient"}, &out); err != nil {
		t.Fatalf("-lenient must skip the missing required floor: %v\n%s", err, out.String())
	}
}

func TestMissingSpeedupFails(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "no-speedup", "min_speedup": 1}
	]}`, `[{"name": "no-speedup", "n": 1000, "cores": 1}]`)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err == nil {
		t.Fatal("a row without a speedup field must fail its floor")
	}
}

const allocRows = `[
  {"name": "steady", "n": 100000, "cores": 1, "speedup": 1.0, "allocs_per_op": 0, "bytes_per_op": 0},
  {"name": "leaky", "n": 100000, "cores": 1, "speedup": 1.0, "allocs_per_op": 3.5, "bytes_per_op": 4096},
  {"name": "unmeasured", "n": 100000, "cores": 1, "speedup": 5.0}
]`

func TestAllocCeilingHolds(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "steady", "max_allocs_per_op": 0, "max_bytes_per_op": 0}
	]}`, allocRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err != nil {
		t.Fatalf("zero-alloc ceiling should hold on an explicit-zero row: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok   BENCH_x.json steady") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
}

func TestAllocCeilingViolated(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "leaky", "max_allocs_per_op": 0, "note": "steady state must not allocate"}
	]}`, allocRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err == nil {
		t.Fatalf("3.5 allocs/op must violate a ceiling of 0:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs_per_op 3.5 > ceiling 0") ||
		!strings.Contains(out.String(), "steady state must not allocate") {
		t.Fatalf("missing FAIL detail:\n%s", out.String())
	}
}

func TestBytesCeilingViolated(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "leaky", "max_bytes_per_op": 1024}
	]}`, allocRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err == nil {
		t.Fatalf("4096 B/op must violate a ceiling of 1024:\n%s", out.String())
	}
}

func TestCeilingAgainstUnmeasuredRowFails(t *testing.T) {
	// An emitter that stops recording allocs_per_op must not pass the
	// ceiling vacuously.
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "unmeasured", "max_allocs_per_op": 0}
	]}`, allocRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err == nil {
		t.Fatalf("a row without allocs_per_op must fail an alloc ceiling:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "records no allocs_per_op") {
		t.Fatalf("missing vacuity FAIL detail:\n%s", out.String())
	}
}

func TestCombinedFloorAndCeiling(t *testing.T) {
	// A floor may gate speedup and allocations at once; either side
	// alone failing fails the row.
	dir, fp := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "steady", "min_speedup": 0.5, "max_allocs_per_op": 0}
	]}`, allocRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err != nil {
		t.Fatalf("combined constraint should hold: %v\n%s", err, out.String())
	}
	out.Reset()
	dir2, fp2 := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "steady", "min_speedup": 2, "max_allocs_per_op": 0}
	]}`, allocRows)
	if err := run([]string{"-floors", fp2, "-dir", dir2}, &out); err == nil {
		t.Fatalf("speedup side of a combined constraint must still gate:\n%s", out.String())
	}
}

func TestBadInputs(t *testing.T) {
	dir, fp := writeBenchDir(t, `{"floors": []}`, benchRows)
	var out bytes.Buffer
	if err := run([]string{"-floors", fp, "-dir", dir}, &out); err == nil {
		t.Fatal("empty floor list must fail")
	}
	dir2, fp2 := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_missing.json", "name": "x", "min_speedup": 1}
	]}`, benchRows)
	if err := run([]string{"-floors", fp2, "-dir", dir2}, &out); err == nil {
		t.Fatal("missing benchmark file must fail")
	}
	dir3, fp3 := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "", "min_speedup": 1}
	]}`, benchRows)
	if err := run([]string{"-floors", fp3, "-dir", dir3}, &out); err == nil {
		t.Fatal("floor without a name must fail")
	}
	dir4, fp4 := writeBenchDir(t, `{"floors": [
		{"file": "BENCH_x.json", "name": "fast-path"}
	]}`, benchRows)
	if err := run([]string{"-floors", fp4, "-dir", dir4}, &out); err == nil {
		t.Fatal("floor with neither a min_speedup nor a ceiling must fail")
	}
}

// TestRepoFloorsAgainstCommittedFiles gates the real committed
// BENCH_*.json files with the real committed floors — the same check
// `make bench-check` runs, so a regression in either file or floors
// fails the ordinary test suite too.
func TestRepoFloorsAgainstCommittedFiles(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "bench_floors.json")); err != nil {
		t.Skipf("bench_floors.json not found: %v", err)
	}
	var out bytes.Buffer
	err := run([]string{"-floors", filepath.Join(root, "bench_floors.json"), "-dir", root}, &out)
	if err != nil {
		t.Fatalf("committed floors vs committed BENCH files: %v\n%s", err, out.String())
	}
}
