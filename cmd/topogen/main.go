// Command topogen generates synthetic Internet topologies.
//
// Usage:
//
//	topogen -model glp -n 11000 -seed 7 -format edgelist -o map.txt
//
// The model registry covers every family implemented by netmodel; run
// with -list to enumerate them. Output formats: edgelist (default),
// json, dot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/core"
	"netmodel/internal/graphio"
	"netmodel/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	model := fs.String("model", "glp", "model family to generate")
	n := fs.Int("n", 11000, "target number of nodes")
	seed := fs.Uint64("seed", 1, "random seed")
	format := fs.String("format", "edgelist", "output format: edgelist, json, dot")
	out := fs.String("o", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list available models and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range core.Names() {
			m, _ := core.Lookup(name)
			fmt.Fprintf(stdout, "%-12s %s\n", name, m.Description)
		}
		return nil
	}
	m, err := core.Lookup(*model)
	if err != nil {
		return err
	}
	top, err := m.Build(*n).Generate(rng.New(*seed))
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edgelist":
		return graphio.WriteEdgeList(w, top.G)
	case "json":
		return graphio.WriteJSON(w, top.G)
	case "dot":
		return graphio.WriteDOT(w, top.G, *model)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
