// Command topogen generates synthetic Internet topologies.
//
// Usage:
//
//	topogen -model glp -n 11000 -seed 7 -format edgelist -o map.txt
//	topogen -model ba -n 100000 -seed 7 -workers 8 > ba.txt
//	topogen -model ba -n 100000 -measure-every 1000 -o ba.txt
//
// The model registry covers every family implemented by netmodel; run
// with -list to enumerate them. Output formats: edgelist (default),
// json, dot. -workers shards generation for the families with a
// parallel kernel (BA, GLP, PFP, Inet, BRITE, Waxman, ER, econ):
// -workers=1 (default) is the sequential reference, any fixed
// -workers>=2 is deterministic in the seed, -workers=0 uses every core.
//
// -measure-every k turns on trajectory mode for the growth families
// (BA, GLP, PFP): generation pauses every k committed nodes, the
// growing map is measured through delta-refreshed CSR snapshots (cost
// proportional to the epoch's changes, not the map), and one row of
// growth statistics per epoch is written to stderr or -trajectory-out.
// Observation never perturbs generation: the emitted map is
// bit-identical to the same run without -measure-every. -paths adds
// the incremental distance family (path lengths, diameter, closeness)
// to every epoch row; -path-sources K samples K pivots (0 = exact).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/cliutil"
	"netmodel/internal/core"
	"netmodel/internal/gen"
	"netmodel/internal/graphio"
	"netmodel/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	model := fs.String("model", "glp", "model family to generate")
	n := fs.Int("n", 11000, "target number of nodes")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "worker pool for sharded generation; 1 = sequential reference, 0 = GOMAXPROCS")
	format := fs.String("format", "edgelist", "output format: edgelist, json, dot")
	out := fs.String("o", "", "output file (default stdout)")
	measureEvery := fs.Int("measure-every", 0, "trajectory mode: measure the growing map every k nodes (growth families)")
	paths := fs.Bool("paths", false, "add incremental path metrics to trajectory rows (needs -measure-every)")
	pathSources := fs.Int("path-sources", 0, "pivot sample size for -paths (0 = exact)")
	trajOut := fs.String("trajectory-out", "", "trajectory table destination (default stderr)")
	list := fs.Bool("list", false, "list available models and exit")
	prof := cliutil.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.FirstError(
		cliutil.PositiveInt("-n", *n),
		cliutil.OneOf("-format", *format, "edgelist", "json", "dot"),
		cliutil.NonNegativeInt("-measure-every", *measureEvery),
		cliutil.NonNegativeInt("-path-sources", *pathSources),
	); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	if *paths && *measureEvery <= 0 {
		return fmt.Errorf("-paths requires -measure-every > 0")
	}
	if *list {
		for _, name := range core.Names() {
			m, _ := core.Lookup(name)
			fmt.Fprintf(stdout, "%-12s %s\n", name, m.Description)
		}
		return nil
	}
	m, err := core.Lookup(*model)
	if err != nil {
		return err
	}
	// -workers=1 is the sequential reference (bit-identical across
	// versions of the sharded kernel); -workers>=2 runs the sharded
	// path, whose output is deterministic in (seed) alone; -workers=0
	// shards across GOMAXPROCS.
	pool := cliutil.ResolveWorkers(*workers)
	var top *gen.Topology
	if *measureEvery > 0 {
		obs := core.NewTrajectoryObserver(pool)
		if *paths {
			obs.EnablePathMetrics(*pathSources, *seed)
		}
		top, err = gen.GenerateTrajectoryWith(m.Build(*n), rng.New(*seed), pool,
			gen.Trajectory{Every: *measureEvery, Observe: obs.Observe})
		if err != nil {
			return err
		}
		if err := cliutil.WriteOutput(*trajOut, os.Stderr, func(tw io.Writer) error {
			return core.WriteTrajectory(tw, obs.Points())
		}); err != nil {
			return err
		}
	} else {
		top, err = gen.GenerateWith(m.Build(*n), rng.New(*seed), pool)
		if err != nil {
			return err
		}
	}
	if err := cliutil.WriteOutput(*out, stdout, func(w io.Writer) error {
		switch *format {
		case "edgelist":
			return graphio.WriteEdgeList(w, top.G)
		case "json":
			return graphio.WriteJSON(w, top.G)
		case "dot":
			return graphio.WriteDOT(w, top.G, *model)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}); err != nil {
		return err
	}
	return prof.Stop()
}
