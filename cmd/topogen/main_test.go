package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"glp", "waxman", "econ"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGenerateEdgeListToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "ba", "-n", "100", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "# netmodel edge list: nodes=100") {
		t.Fatalf("unexpected header: %q", out.String()[:40])
	}
}

func TestGenerateJSONToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	var out bytes.Buffer
	if err := run([]string{"-model", "gnp", "-n", "50", "-format", "json", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"nodes":50`) {
		t.Fatalf("bad json: %s", data)
	}
}

func TestGenerateDOT(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "ws", "-n", "30", "-format", "dot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph \"ws\"") {
		t.Fatal("missing DOT header")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "nope", "-n", "10"}, &out); err == nil {
		t.Fatal("unknown model should fail")
	}
	if err := run([]string{"-model", "ba", "-n", "10", "-format", "xml"}, &out); err == nil {
		t.Fatal("unknown format should fail")
	}
}

// TestWorkersFlag: the sharded path is reproducible at a fixed worker
// count, worker-count invariant at >= 2, and the default stays on the
// sequential reference.
func TestWorkersFlag(t *testing.T) {
	gen := func(args ...string) string {
		t.Helper()
		var out bytes.Buffer
		if err := run(append([]string{"-model", "ba", "-n", "300", "-seed", "9"}, args...), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	seq := gen()
	if got := gen("-workers", "1"); got != seq {
		t.Fatal("-workers=1 must match the default sequential output")
	}
	w4a, w4b := gen("-workers", "4"), gen("-workers", "4")
	if w4a != w4b {
		t.Fatal("-workers=4 not reproducible across runs")
	}
	if w2 := gen("-workers", "2"); w2 != w4a {
		t.Fatal("sharded output differs between worker counts")
	}
	// The econ adapter threads -workers through the market rounds.
	var out bytes.Buffer
	if err := run([]string{"-model", "econ", "-n", "200", "-seed", "3", "-workers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "# netmodel edge list") {
		t.Fatal("econ sharded generation produced no edge list")
	}
}

// TestMeasureEvery: trajectory mode writes one growth row per epoch to
// -trajectory-out and must not perturb the generated map.
func TestMeasureEvery(t *testing.T) {
	var plain bytes.Buffer
	if err := run([]string{"-model", "ba", "-n", "400", "-seed", "4"}, &plain); err != nil {
		t.Fatal(err)
	}
	trajPath := filepath.Join(t.TempDir(), "traj.txt")
	var out bytes.Buffer
	if err := run([]string{"-model", "ba", "-n", "400", "-seed", "4",
		"-measure-every", "100", "-trajectory-out", trajPath}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != plain.String() {
		t.Fatal("-measure-every changed the generated map")
	}
	data, err := os.ReadFile(trajPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + epochs at 100, 200, 300, 400.
	if len(lines) != 5 {
		t.Fatalf("trajectory table has %d lines:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[0], "gamma") || !strings.Contains(lines[0], "freeze") {
		t.Fatalf("missing header: %q", lines[0])
	}
	for _, row := range lines[2:] {
		if !strings.Contains(row, "delta") {
			t.Fatalf("epoch row not measured via delta refresh: %q", row)
		}
	}
	// Sharded trajectory runs work too and agree with the plain
	// sharded map.
	var shPlain, shTraj bytes.Buffer
	if err := run([]string{"-model", "glp", "-n", "300", "-seed", "4", "-workers", "4"}, &shPlain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "glp", "-n", "300", "-seed", "4", "-workers", "4",
		"-measure-every", "75", "-trajectory-out", filepath.Join(t.TempDir(), "t2.txt")}, &shTraj); err != nil {
		t.Fatal(err)
	}
	if shPlain.String() != shTraj.String() {
		t.Fatal("sharded -measure-every changed the generated map")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-model", "ba", "-n", "200", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no edge list emitted")
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s: empty profile", path)
		}
	}
}
