package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"glp", "waxman", "econ"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGenerateEdgeListToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "ba", "-n", "100", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "# netmodel edge list: nodes=100") {
		t.Fatalf("unexpected header: %q", out.String()[:40])
	}
}

func TestGenerateJSONToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	var out bytes.Buffer
	if err := run([]string{"-model", "gnp", "-n", "50", "-format", "json", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"nodes":50`) {
		t.Fatalf("bad json: %s", data)
	}
}

func TestGenerateDOT(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "ws", "-n", "30", "-format", "dot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph \"ws\"") {
		t.Fatal("missing DOT header")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "nope", "-n", "10"}, &out); err == nil {
		t.Fatal("unknown model should fail")
	}
	if err := run([]string{"-model", "ba", "-n", "10", "-format", "xml"}, &out); err == nil {
		t.Fatal("unknown format should fail")
	}
}
