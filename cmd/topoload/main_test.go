package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadDefaultsRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-model", "ba", "-n", "200", "-seeds", "1,2",
		"-load", "0.4,1.2", "-tail", "1.3", "-epochs", "5", "-path-sources", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "1 models × 1 sizes × 2 workloads × 2 seeds = 4 cells") {
		t.Fatalf("missing grid banner:\n%s", s)
	}
	if !strings.Contains(s, "cross-seed workload aggregates") {
		t.Fatalf("missing workload aggregates:\n%s", s)
	}
}

func TestLoadCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-model", "ba", "-n", "200", "-seeds", "1,2",
		"-load", "0.5", "-epochs", "4", "-path-sources", "20", "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "model,n,seed,load_factor,tail_index,failure,arrived,") {
		t.Fatalf("missing CSV header:\n%s", s)
	}
	for _, label := range []string{"mean", "std", "min", "max"} {
		if !strings.Contains(s, "ba,200,"+label+",") {
			t.Fatalf("missing %s aggregate row:\n%s", label, s)
		}
	}
}

func TestLoadJSONOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.json")
	var out bytes.Buffer
	err := run([]string{"-model", "ba", "-n", "200", "-seeds", "3", "-load", "0.5",
		"-epochs", "4", "-path-sources", "20", "-format", "json", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"workload"`, `"util_ccdf"`, `"load_factors"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("JSON missing %s:\n%.400s", key, data)
		}
	}
	if out.Len() != 0 {
		t.Fatal("-o must redirect output away from stdout")
	}
}

func TestLoadRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad load":     {"-load", "x"},
		"no load":      {"-load", ""},
		"bad tail":     {"-tail", "y"},
		"bad seeds":    {"-seeds", "-2"},
		"bad arrivals": {"-arrivals", "burst", "-n", "100", "-epochs", "2"},
		"bad engine":   {"-engine", "quantum", "-n", "100", "-epochs", "2"},
		"bad format":   {"-n", "100", "-epochs", "2", "-format", "yaml"},
		"bad model":    {"-model", "nope", "-n", "100", "-epochs", "2"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

// TestLoadWorkerInvariance pins the acceptance criterion: the summary
// of a load factor × tail index grid is byte-identical for every cell
// pool width.
func TestLoadWorkerInvariance(t *testing.T) {
	args := []string{"-model", "ba", "-n", "250", "-seeds", "1,2,3",
		"-load", "0.3,1.5", "-tail", "1.3,2.5", "-epochs", "6",
		"-path-sources", "20", "-format", "csv"}
	var base string
	for _, workers := range []string{"1", "2", "4", "8"} {
		var out bytes.Buffer
		if err := run(append([]string{"-workers", workers}, args...), &out); err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = out.String()
		} else if out.String() != base {
			t.Fatalf("-workers %s output diverged from -workers 1", workers)
		}
	}
	if base == "" || !strings.Contains(base, "wl_mean_fct") {
		t.Fatalf("workload CSV missing scalar columns:\n%.300s", base)
	}
}

// TestLoadEngineInvariance pins the event engine end to end: the same
// grid run with -engine event is byte-identical at every cell pool
// width, and its per-cell counts match the epoch engine. (cell-workers
// is not an invariance axis: >= 2 switches to the sharded generation
// kernels, which produce different maps by design.)
func TestLoadEngineInvariance(t *testing.T) {
	args := []string{"-model", "ba", "-n", "250", "-seeds", "1,2",
		"-load", "0.4,1.2", "-epochs", "6", "-path-sources", "20", "-format", "csv"}
	var epochOut, base string
	{
		var out bytes.Buffer
		if err := run(append([]string{"-engine", "epoch"}, args...), &out); err != nil {
			t.Fatal(err)
		}
		epochOut = out.String()
	}
	for _, w := range []string{"1", "2", "4"} {
		var out bytes.Buffer
		if err := run(append([]string{"-engine", "event", "-workers", w}, args...), &out); err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = out.String()
		} else if out.String() != base {
			t.Fatalf("-engine event -workers %s output diverged", w)
		}
	}
	// Engines draw identical flows: the integer columns (arrived,
	// undelivered, completed, residual counts) agree row by row.
	epRows, evRows := strings.Split(epochOut, "\n"), strings.Split(base, "\n")
	if len(epRows) != len(evRows) {
		t.Fatalf("row counts diverged: %d vs %d", len(epRows), len(evRows))
	}
	for i := range epRows {
		epF, evF := strings.Split(epRows[i], ","), strings.Split(evRows[i], ",")
		if len(epF) < 7 || len(evF) < 7 {
			continue
		}
		// Columns 6..9 are arrived, completed, undelivered, residual_flows.
		for c := 6; c <= 9 && c < len(epF); c++ {
			if epF[c] != evF[c] {
				t.Fatalf("row %d column %d diverged between engines:\nepoch: %s\nevent: %s",
					i, c, epRows[i], evRows[i])
			}
		}
	}
}

// TestLoadFailureAxis runs the -failures axis end to end: scenario
// labels appear as cell coordinates, survivability columns fill in for
// the outage scenarios, and the whole grid stays byte-identical across
// worker counts.
func TestLoadFailureAxis(t *testing.T) {
	args := []string{"-model", "ba", "-n", "200", "-seeds", "1,2", "-load", "0.6",
		"-epochs", "8", "-path-sources", "20", "-format", "csv",
		"-failures", "none,random,degree", "-fail-links", "3", "-mtbf", "5", "-mttr", "2",
		"-fail-at", "3", "-repair-at", "6", "-fail-retries", "1"}
	var base string
	for _, w := range []string{"1", "2", "4"} {
		var out bytes.Buffer
		if err := run(append([]string{"-workers", w}, args...), &out); err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = out.String()
		} else if out.String() != base {
			t.Fatalf("-workers %s failure sweep diverged", w)
		}
	}
	// Labels with commas come back CSV-quoted.
	for _, label := range []string{",none,", `,"random:l3,n0,mtbf5,mttr2",`, `,"degree:l3,n0@3",`} {
		if !strings.Contains(base, label) {
			t.Fatalf("missing failure scenario %q:\n%.400s", label, base)
		}
	}
}

// TestLoadRejectsBadFailureFlags pins the -failures validation
// surface: unknown scenarios and negative sub-flags fail as one-line
// flag errors before any simulation runs.
func TestLoadRejectsBadFailureFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown mode":    {"-failures", "meteor"},
		"scheduled flag":  {"-failures", "scheduled"},
		"negative links":  {"-failures", "random", "-fail-links", "-1"},
		"negative mtbf":   {"-failures", "random", "-mtbf", "-5"},
		"zero fail-at":    {"-failures", "degree", "-fail-at", "0"},
		"negative load":   {"-load", "-0.5"},
		"negative tail":   {"-tail", "-1.3"},
		"negative epochs": {"-epochs", "-4"},
		"zero n":          {"-n", "0"},
	} {
		var out bytes.Buffer
		err := run(append([]string{"-model", "ba", "-n", "150", "-epochs", "3"}, args...), &out)
		if err == nil {
			t.Fatalf("%s: want error", name)
		}
		if msg := err.Error(); strings.ContainsRune(msg, '\n') {
			t.Fatalf("%s: error not one-line: %q", name, msg)
		}
	}
}
