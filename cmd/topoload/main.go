// Command topoload runs flow-level traffic workloads over synthetic
// topologies: a (load factor × tail index × seed) grid of workload
// simulations on one model family, the toposweep-style front end of the
// traffic workload subsystem. Each cell generates the topology, routes
// flows arriving on gravity-weighted origin-destination pairs along
// shortest paths with max-min fair bandwidth sharing, and reports flow
// completion times, link-utilization CCDFs and overload fractions;
// cross-seed moments are folded per (load, tail) combination.
//
// Usage:
//
//	topoload -model ba -n 2000 -load 0.3,0.6,1.2 -tail 1.3,2.5 -seeds 1,2,3
//	topoload -model glp -n 5000 -arrivals onoff -sizes lognormal -format csv -o wl.csv
//	topoload -model ba -n 2000 -load 1 -epochs 50 -workers 8 -format json
//	topoload -model ba -n 100000 -engine event -load 0.7 -cell-workers 8
//
// -workers sizes the cell pool and never changes results: every cell
// draws only from streams split off its own seed and the simulation
// loop is sequential, so the same grid is byte-identical at every pool
// width. -cell-workers hands each cell an internal pool instead
// (sharded generation and parallel shortest-path tree builds) — the
// knob for few-huge-cell runs.
//
// -engine selects the simulator: "epoch" recomputes every link's
// max-min rates each epoch (the pinned reference), "event" keeps a
// calendar of arrivals and predicted departures and re-solves only the
// bottleneck components an event touches, solving independent
// components in parallel on the cell's pool. Both engines draw the
// same flows from the same streams and agree on per-flow completion
// times; the event engine is the fast path for large sparse runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/cliutil"
	"netmodel/internal/graphio"
	"netmodel/internal/sweep"
	"netmodel/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topoload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topoload", flag.ContinueOnError)
	model := fs.String("model", "ba", "model family to load")
	n := fs.Int("n", 2000, "target number of nodes")
	seeds := fs.String("seeds", "1", "comma-separated replicate seeds")
	loads := fs.String("load", "0.5", "comma-separated load factors (offered load / total capacity)")
	tails := fs.String("tail", "", "comma-separated flow-size tail indexes (default: the distribution's)")
	arrivals := fs.String("arrivals", "poisson", "arrival process: poisson, onoff")
	engine := fs.String("engine", traffic.EngineEpoch, "simulation engine: epoch, event")
	sizes := fs.String("sizes", "pareto", "flow-size distribution: pareto, lognormal, exp")
	meanSize := fs.Float64("mean-size", 0, "mean flow size in capacity*time units (default 1)")
	meanOn := fs.Float64("mean-on", 0, "on-off mean on-duration (default 1)")
	meanOff := fs.Float64("mean-off", 0, "on-off mean off-duration (default 4)")
	epochs := fs.Int("epochs", 0, "simulated epochs (default 20)")
	dt := fs.Float64("dt", 0, "epoch length (default 1)")
	capacity := fs.Float64("capacity", 0, "capacity of a multiplicity-1 link (default 1)")
	target := fs.String("target", "as", "reference target: as, asplus")
	measureEvery := fs.Int("measure-every", 0, "record a growth trajectory per cell every k committed nodes")
	paths := fs.Bool("paths", false, "add incremental path metrics to trajectory rows (needs -measure-every)")
	sources := fs.Int("path-sources", 50, "BFS sources for path stats per cell (0 = exact)")
	workers := fs.Int("workers", 0, "cell pool width; 0 = GOMAXPROCS (never changes results)")
	cellWorkers := fs.Int("cell-workers", 1, "per-cell generation/simulation pool; >= 2 uses the sharded kernels")
	format := fs.String("format", "table", "output format: table, csv, json")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	loadFactors, err := cliutil.ParseFloats(*loads)
	if err != nil {
		return fmt.Errorf("-load: %w", err)
	}
	tailIndexes, err := cliutil.ParseFloats(*tails)
	if err != nil {
		return fmt.Errorf("-tail: %w", err)
	}
	seedList, err := cliutil.ParseSeeds(*seeds)
	if err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	g := sweep.Grid{
		Models:          []string{*model},
		Sizes:           []int{*n},
		Seeds:           seedList,
		Target:          *target,
		PathSources:     *sources,
		CellWorkers:     *cellWorkers,
		MeasureEvery:    *measureEvery,
		TrajectoryPaths: *paths,
		Workload: &sweep.WorkloadAxes{
			Spec: traffic.WorkloadSpec{
				Engine:       *engine,
				Arrivals:     *arrivals,
				Sizes:        *sizes,
				MeanSize:     *meanSize,
				MeanOn:       *meanOn,
				MeanOff:      *meanOff,
				Epochs:       *epochs,
				EpochLen:     *dt,
				CapacityUnit: *capacity,
			},
			LoadFactors: loadFactors,
			TailIndexes: tailIndexes,
		},
	}
	s, err := sweep.Run(g, *workers)
	if err != nil {
		return err
	}
	return cliutil.WriteOutput(*out, stdout, func(w io.Writer) error {
		switch *format {
		case "table":
			return graphio.WriteWorkloadTable(w, s)
		case "csv":
			return graphio.WriteWorkloadCSV(w, s)
		case "json":
			return graphio.WriteWorkloadJSON(w, s)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	})
}
