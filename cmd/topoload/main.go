// Command topoload runs flow-level traffic workloads over synthetic
// topologies: a (load factor × tail index × seed) grid of workload
// simulations on one model family, the toposweep-style front end of the
// traffic workload subsystem. Each cell generates the topology, routes
// flows arriving on gravity-weighted origin-destination pairs along
// shortest paths with max-min fair bandwidth sharing, and reports flow
// completion times, link-utilization CCDFs and overload fractions;
// cross-seed moments are folded per (load, tail) combination.
//
// Usage:
//
//	topoload -model ba -n 2000 -load 0.3,0.6,1.2 -tail 1.3,2.5 -seeds 1,2,3
//	topoload -model glp -n 5000 -arrivals onoff -sizes lognormal -format csv -o wl.csv
//	topoload -model ba -n 2000 -load 1 -epochs 50 -workers 8 -format json
//	topoload -model ba -n 100000 -engine event -load 0.7 -cell-workers 8
//
// -workers sizes the cell pool and never changes results: every cell
// draws only from streams split off its own seed and the simulation
// loop is sequential, so the same grid is byte-identical at every pool
// width. -cell-workers hands each cell an internal pool instead
// (sharded generation and parallel shortest-path tree builds) — the
// knob for few-huge-cell runs.
//
// -engine selects the simulator: "epoch" recomputes every link's
// max-min rates each epoch (the pinned reference), "event" keeps a
// calendar of arrivals and predicted departures and re-solves only the
// bottleneck components an event touches, solving independent
// components in parallel on the cell's pool. Both engines draw the
// same flows from the same streams and agree on per-flow completion
// times; the event engine is the fast path for large sparse runs.
//
// -failures adds a failure-scenario axis next to the load and tail
// axes: each listed mode (none, random, degree, load) becomes one
// scenario built from the -fail-* sub-flags, and every cell reports
// survivability metrics — killed/rerouted/retried flows,
// disconnected-OD fraction, giant-component capacity — next to the
// usual workload scalars:
//
//	topoload -model ba -n 5000 -load 0.6 -failures none,random -fail-links 5 -mtbf 10 -mttr 3
//	topoload -model glp -n 2000 -failures degree -fail-nodes 2 -fail-at 5 -repair-at 15 -fail-retries 2
//
// Scheduled event lists are a JSON-grid feature (toposweep -grid with
// workload.failures), not a flag.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/cliutil"
	"netmodel/internal/core"
	"netmodel/internal/graphio"
	"netmodel/internal/sweep"
	"netmodel/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topoload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topoload", flag.ContinueOnError)
	model := fs.String("model", "ba", "model family to load")
	n := fs.Int("n", 2000, "target number of nodes")
	seeds := fs.String("seeds", "1", "comma-separated replicate seeds")
	loads := fs.String("load", "0.5", "comma-separated load factors (offered load / total capacity)")
	tails := fs.String("tail", "", "comma-separated flow-size tail indexes (default: the distribution's)")
	arrivals := fs.String("arrivals", "poisson", "arrival process: poisson, onoff")
	engine := fs.String("engine", traffic.EngineEpoch, "simulation engine: epoch, event")
	sizes := fs.String("sizes", "pareto", "flow-size distribution: pareto, lognormal, exp")
	meanSize := fs.Float64("mean-size", 0, "mean flow size in capacity*time units (default 1)")
	meanOn := fs.Float64("mean-on", 0, "on-off mean on-duration (default 1)")
	meanOff := fs.Float64("mean-off", 0, "on-off mean off-duration (default 4)")
	epochs := fs.Int("epochs", 0, "simulated epochs (default 20)")
	dt := fs.Float64("dt", 0, "epoch length (default 1)")
	capacity := fs.Float64("capacity", 0, "capacity of a multiplicity-1 link (default 1)")
	target := fs.String("target", "as", "reference target: as, asplus")
	measureEvery := fs.Int("measure-every", 0, "record a growth trajectory per cell every k committed nodes")
	paths := fs.Bool("paths", false, "add incremental path metrics to trajectory rows (needs -measure-every)")
	sources := fs.Int("path-sources", 50, "BFS sources for path stats per cell (0 = exact)")
	workers := fs.Int("workers", 0, "cell pool width; 0 = GOMAXPROCS (never changes results)")
	cellWorkers := fs.Int("cell-workers", 1, "per-cell generation/simulation pool; >= 2 uses the sharded kernels")
	format := fs.String("format", "table", "output format: table, csv, json")
	out := fs.String("o", "", "output file (default stdout)")
	failures := fs.String("failures", "", "comma-separated failure scenarios to sweep: none, random, degree, load")
	failLinks := fs.Int("fail-links", 1, "links failing per scenario")
	failNodes := fs.Int("fail-nodes", 0, "nodes failing per scenario")
	mtbf := fs.Float64("mtbf", 10, "random failures: mean time between failures (epoch-length units)")
	mttr := fs.Float64("mttr", 2, "random failures: mean time to repair (0 = permanent)")
	failAt := fs.Int("fail-at", 1, "targeted failures: epoch the outage starts")
	repairAt := fs.Int("repair-at", 0, "targeted failures: epoch the outage is repaired (0 = never)")
	failRetries := fs.Int("fail-retries", 0, "retry budget for flows killed by an outage")
	failRetryAfter := fs.Int("fail-retry-after", 1, "epochs between a kill and its retry")
	cacheBudget := fs.String("cache-budget", "0", "artifact-cache byte budget (e.g. 256M, 1G; -1 = unbounded, 0 = off); reuses topology/metrics/routing artifacts across cells, never changing results")
	cacheStats := fs.Bool("cache-stats", false, "report per-stage artifact-cache hit/miss/eviction counters")
	prof := cliutil.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	budget, err := cliutil.ParseByteSize("-cache-budget", *cacheBudget)
	if err != nil {
		return err
	}
	loadFactors, err := cliutil.ParseFloats(*loads)
	if err != nil {
		return fmt.Errorf("-load: %w", err)
	}
	tailIndexes, err := cliutil.ParseFloats(*tails)
	if err != nil {
		return fmt.Errorf("-tail: %w", err)
	}
	seedList, err := cliutil.ParseSeeds(*seeds)
	if err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	if err := cliutil.FirstError(
		cliutil.PositiveInt("-n", *n),
		cliutil.PositiveFloats("-load", loadFactors),
		cliutil.PositiveFloats("-tail", tailIndexes),
		cliutil.OneOf("-engine", *engine, traffic.EngineEpoch, traffic.EngineEvent),
		cliutil.OneOf("-arrivals", *arrivals, "poisson", "onoff"),
		cliutil.OneOf("-sizes", *sizes, "pareto", "lognormal", "exp"),
		cliutil.OneOf("-format", *format, "table", "csv", "json"),
		cliutil.NonNegativeFloat("-mean-size", *meanSize),
		cliutil.NonNegativeFloat("-mean-on", *meanOn),
		cliutil.NonNegativeFloat("-mean-off", *meanOff),
		cliutil.NonNegativeInt("-epochs", *epochs),
		cliutil.NonNegativeFloat("-dt", *dt),
		cliutil.NonNegativeFloat("-capacity", *capacity),
		cliutil.NonNegativeInt("-measure-every", *measureEvery),
		cliutil.NonNegativeInt("-path-sources", *sources),
		cliutil.NonNegativeInt("-fail-links", *failLinks),
		cliutil.NonNegativeInt("-fail-nodes", *failNodes),
		cliutil.NonNegativeFloat("-mtbf", *mtbf),
		cliutil.NonNegativeFloat("-mttr", *mttr),
		cliutil.PositiveInt("-fail-at", *failAt),
		cliutil.NonNegativeInt("-repair-at", *repairAt),
		cliutil.NonNegativeInt("-fail-retries", *failRetries),
		cliutil.PositiveInt("-fail-retry-after", *failRetryAfter),
	); err != nil {
		return err
	}
	var failSpecs []traffic.FailureSpec
	for _, mode := range cliutil.SplitList(*failures) {
		if err := cliutil.OneOf("-failures", mode,
			traffic.FailNone, traffic.FailRandom, traffic.FailDegree, traffic.FailLoad); err != nil {
			return err
		}
		spec := traffic.FailureSpec{Mode: mode}
		switch mode {
		case traffic.FailRandom:
			spec.Links, spec.Nodes = *failLinks, *failNodes
			spec.MTBF, spec.MTTR = *mtbf, *mttr
		case traffic.FailDegree, traffic.FailLoad:
			spec.Links, spec.Nodes = *failLinks, *failNodes
			spec.FailAt, spec.RepairAt = *failAt, *repairAt
		}
		if mode != traffic.FailNone {
			spec.MaxRetries, spec.RetryAfter = *failRetries, *failRetryAfter
		}
		failSpecs = append(failSpecs, spec)
	}
	g := sweep.Grid{
		Models:          []string{*model},
		Sizes:           []int{*n},
		Seeds:           seedList,
		Target:          *target,
		PathSources:     *sources,
		CellWorkers:     *cellWorkers,
		MeasureEvery:    *measureEvery,
		TrajectoryPaths: *paths,
		Workload: &sweep.WorkloadAxes{
			Spec: traffic.WorkloadSpec{
				Engine:       *engine,
				Arrivals:     *arrivals,
				Sizes:        *sizes,
				MeanSize:     *meanSize,
				MeanOn:       *meanOn,
				MeanOff:      *meanOff,
				Epochs:       *epochs,
				EpochLen:     *dt,
				CapacityUnit: *capacity,
			},
			LoadFactors: loadFactors,
			TailIndexes: tailIndexes,
			Failures:    failSpecs,
		},
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	s, err := sweep.RunWith(g, sweep.Options{
		Workers:    *workers,
		Cache:      core.NewArtifactCache(budget),
		CacheStats: *cacheStats,
	})
	if err != nil {
		return err
	}
	if s.DuplicateCells > 0 {
		fmt.Fprintf(os.Stderr, "topoload: warning: %d duplicate cells deduplicated\n", s.DuplicateCells)
	}
	if err := cliutil.WriteOutput(*out, stdout, func(w io.Writer) error {
		switch *format {
		case "table":
			return graphio.WriteWorkloadTable(w, s)
		case "csv":
			return graphio.WriteWorkloadCSV(w, s)
		case "json":
			return graphio.WriteWorkloadJSON(w, s)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}); err != nil {
		return err
	}
	return prof.Stop()
}
