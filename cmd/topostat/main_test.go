package main

import (
	"bytes"
	"strings"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graphio"
	"netmodel/internal/rng"
)

const tinyMap = "# netmodel edge list: nodes=5 edges=5\n0 1\n0 2\n1 2\n2 3\n3 4\n"

func TestStatFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-path-sources", "0", "-"}, strings.NewReader(tinyMap), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"nodes              5", "edges              5", "avg clustering", "max coreness"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestStatCCDF(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-ccdf", "-path-sources", "0", "-"}, strings.NewReader(tinyMap), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# k Pc(k)") {
		t.Fatal("missing CCDF series")
	}
}

func TestStatUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file argument should fail")
	}
	if err := run([]string{"/definitely/not/a/file"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := run([]string{"-"}, strings.NewReader("bad input\n"), &out); err == nil {
		t.Fatal("malformed edge list should fail")
	}
}

// TestMeasureEveryReplay: trajectory replay prints epoch rows before
// the summary, and the summary itself must match the plain run (the
// final refreshed snapshot is the whole map).
func TestMeasureEveryReplay(t *testing.T) {
	top, err := gen.BA{N: 300, M: 2}.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var mapOut bytes.Buffer
	if err := graphio.WriteEdgeList(&mapOut, top.G); err != nil {
		t.Fatal(err)
	}
	var plain, traj bytes.Buffer
	if err := run([]string{"-path-sources", "40", "-"}, bytes.NewReader(mapOut.Bytes()), &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-path-sources", "40", "-measure-every", "150", "-"},
		bytes.NewReader(mapOut.Bytes()), &traj); err != nil {
		t.Fatal(err)
	}
	got := traj.String()
	if !strings.Contains(got, "delta") || !strings.Contains(got, "gamma") {
		t.Fatalf("missing trajectory rows:\n%s", got)
	}
	if !strings.HasSuffix(got, plain.String()) {
		t.Fatalf("summary after trajectory differs from the plain run:\ntraj:\n%s\nplain:\n%s", got, plain.String())
	}
}
