package main

import (
	"bytes"
	"strings"
	"testing"
)

const tinyMap = "# netmodel edge list: nodes=5 edges=5\n0 1\n0 2\n1 2\n2 3\n3 4\n"

func TestStatFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-path-sources", "0", "-"}, strings.NewReader(tinyMap), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"nodes              5", "edges              5", "avg clustering", "max coreness"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestStatCCDF(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-ccdf", "-path-sources", "0", "-"}, strings.NewReader(tinyMap), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# k Pc(k)") {
		t.Fatal("missing CCDF series")
	}
}

func TestStatUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file argument should fail")
	}
	if err := run([]string{"/definitely/not/a/file"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := run([]string{"-"}, strings.NewReader("bad input\n"), &out); err == nil {
		t.Fatal("malformed edge list should fail")
	}
}
