// Command topostat measures a topology: the full metric snapshot, the
// correlation spectra slopes, and optionally the degree CCDF series.
//
// Usage:
//
//	topostat map.txt
//	topogen -model pfp -n 5000 | topostat -ccdf -
//	topostat -measure-every 2000 map.txt
//
// -measure-every k replays the map as a growth trajectory: edges are
// re-added in sorted order and the accreting graph is measured every k
// edges through delta-refreshed CSR snapshots, printing one row of
// growth statistics per epoch before the final summary. The final
// epoch's snapshot then serves the summary itself, so the map is
// frozen exactly once either way. -paths adds the distance family
// (mean path length, diameter, mean closeness) to every trajectory
// row, maintained incrementally across epochs by the engine's
// delta-repaired distance map; -path-sources sizes its pivot sample
// (0 = exact).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/cliutil"
	"netmodel/internal/compare"
	"netmodel/internal/core"
	"netmodel/internal/engine"
	"netmodel/internal/graph"
	"netmodel/internal/graphio"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topostat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("topostat", flag.ContinueOnError)
	sources := fs.Int("path-sources", 500, "BFS sources for path stats (0 = exact)")
	seed := fs.Uint64("seed", 1, "sampling seed")
	ccdf := fs.Bool("ccdf", false, "also print the degree CCDF series")
	measureEvery := fs.Int("measure-every", 0, "replay the map as a growth trajectory, measuring every k edges")
	paths := fs.Bool("paths", false, "add incremental path metrics to trajectory rows (needs -measure-every)")
	workers := fs.Int("workers", 0, "analysis goroutines (0 = GOMAXPROCS)")
	prof := cliutil.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: topostat [flags] <edge-list file or - for stdin>")
	}
	if err := cliutil.FirstError(
		cliutil.NonNegativeInt("-path-sources", *sources),
		cliutil.NonNegativeInt("-measure-every", *measureEvery),
	); err != nil {
		return err
	}
	if *paths && *measureEvery <= 0 {
		return fmt.Errorf("-paths requires -measure-every > 0")
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	g, err := load(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	// The shared policy: <= 0 means every core, for both the trajectory
	// observer and the metrics engine.
	pool := cliutil.ResolveWorkers(*workers)
	var eng *engine.Engine
	if *measureEvery > 0 {
		obs := core.NewTrajectoryObserver(pool)
		if *paths {
			obs.EnablePathMetrics(*sources, *seed)
		}
		if err := replayTrajectory(g, *measureEvery, obs); err != nil {
			return err
		}
		if err := core.WriteTrajectory(stdout, obs.Points()); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		eng = obs.Engine()
	} else {
		// Freeze once; every metric below reads the immutable CSR
		// snapshot through the parallel engine, sharing memoized
		// intermediates.
		frozen, err := g.FreezeChecked()
		if err != nil {
			return err
		}
		eng = engine.New(frozen, engine.WithWorkers(pool))
	}
	snap, err := eng.Measure(rng.New(*seed), *sources)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "nodes              %d\n", snap.N)
	fmt.Fprintf(stdout, "edges              %d\n", snap.M)
	fmt.Fprintf(stdout, "avg degree         %.3f\n", snap.AvgDegree)
	fmt.Fprintf(stdout, "max degree         %d\n", snap.MaxDegree)
	fmt.Fprintf(stdout, "degree exponent    %.3f (KS %.3f)\n", snap.Gamma, snap.GammaKS)
	fmt.Fprintf(stdout, "avg clustering     %.4f\n", snap.AvgClustering)
	fmt.Fprintf(stdout, "transitivity       %.4f\n", snap.Transitivity)
	fmt.Fprintf(stdout, "assortativity      %+.4f\n", snap.Assortativity)
	fmt.Fprintf(stdout, "avg path length    %.3f\n", snap.AvgPathLen)
	fmt.Fprintf(stdout, "diameter           %d\n", snap.Diameter)
	fmt.Fprintf(stdout, "max coreness       %d\n", snap.MaxCore)
	fmt.Fprintf(stdout, "giant component    %.1f%%\n", 100*snap.GiantFrac)
	sp := compare.MeasureSpectraFrozen(eng)
	fmt.Fprintf(stdout, "knn(k) slope       %.3f\n", sp.KnnSlope)
	fmt.Fprintf(stdout, "c(k) slope         %.3f\n", sp.CkSlope)
	if *ccdf {
		ks, pc := metrics.DegreeCCDFFrozen(eng.Snapshot())
		fmt.Fprintln(stdout, "# k Pc(k)")
		for i, k := range ks {
			fmt.Fprintf(stdout, "%d %.6g\n", k, pc[i])
		}
	}
	return prof.Stop()
}

// replayTrajectory re-adds the map's sorted edge list to an accreting
// graph, observing every `every` edges and once at completion; after
// the last observation the observer's engine holds the full map. The
// replayed graph matches the loaded one exactly (multiplicities and
// trailing isolated nodes included).
func replayTrajectory(g *graph.Graph, every int, obs *core.TrajectoryObserver) error {
	replay := graph.New(0)
	count := 0
	for _, e := range g.EdgeList() {
		for replay.N() <= e.U || replay.N() <= e.V {
			replay.AddNode()
		}
		for i := 0; i < e.W; i++ {
			replay.MustAddEdge(e.U, e.V)
		}
		count++
		if count%every == 0 {
			if err := obs.Observe(replay, replay.N()); err != nil {
				return err
			}
		}
	}
	for replay.N() < g.N() {
		replay.AddNode()
	}
	if count%every != 0 || replay.N() != obsN(obs) || count == 0 {
		return obs.Observe(replay, replay.N())
	}
	return nil
}

// obsN returns the node count at the observer's last epoch, -1 before
// any.
func obsN(obs *core.TrajectoryObserver) int {
	pts := obs.Points()
	if len(pts) == 0 {
		return -1
	}
	return pts[len(pts)-1].N
}

func load(path string, stdin io.Reader) (*graph.Graph, error) {
	if path == "-" {
		return graphio.ReadEdgeList(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadEdgeList(f)
}
