package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "ba", "-n", "300", "-path-sources", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "aggregate score") {
		t.Fatalf("missing report:\n%s", out.String())
	}
}

func TestCompareFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-file", path, "-target", "asplus", "-path-sources", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "AS+ extended map") {
		t.Fatalf("wrong target:\n%s", out.String())
	}
}

func TestCompareAllRanks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-all", "-n", "200", "-path-sources", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "model ranking") || !strings.Contains(s, " 1. ") {
		t.Fatalf("missing ranking:\n%s", s)
	}
	// every registered model must appear
	for _, name := range []string{"glp", "waxman", "transitstub", "econ-dist"} {
		if !strings.Contains(s, name) {
			t.Fatalf("ranking missing %s:\n%s", name, s)
		}
	}
}

// TestCompareWorkersPlumbed: -workers must flow into the pipeline (and
// with workers=1 reproduce the sequential default exactly).
func TestCompareWorkersPlumbed(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-model", "ba", "-n", "300", "-path-sources", "50"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "ba", "-n", "300", "-path-sources", "50",
		"-workers", "1"}, &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatal("-workers 1 must match the default run")
	}
	par.Reset()
	if err := run([]string{"-model", "ba", "-n", "300", "-path-sources", "50",
		"-workers", "4"}, &par); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(par.String(), "aggregate score") {
		t.Fatalf("sharded run missing report:\n%s", par.String())
	}
}

func TestCompareErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no mode should fail")
	}
	if err := run([]string{"-model", "ba", "-target", "x"}, &out); err == nil {
		t.Fatal("unknown target should fail")
	}
	if err := run([]string{"-file", "/no/such/file"}, &out); err == nil {
		t.Fatal("missing file should fail")
	}
}
