// Command topocmp validates topologies against the published AS-map
// statistics, either for one model or as a full shoot-out across the
// registry.
//
// Usage:
//
//	topocmp -model glp -n 11000          # one model vs the AS map
//	topocmp -all -n 4000 -workers 8       # rank every model, sharded kernels
//	topocmp -file map.txt -target asplus  # a file vs the AS+ map
//
// -workers shards generation (families with a parallel kernel) and the
// metrics engine: 1 keeps the sequential reference generators, 0 uses
// every core for both; left unset, generation stays sequential and the
// engine uses every core. For full grid sweeps with cross-seed
// aggregation, see toposweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/cliutil"
	"netmodel/internal/compare"
	"netmodel/internal/core"
	"netmodel/internal/engine"
	"netmodel/internal/graphio"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topocmp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topocmp", flag.ContinueOnError)
	model := fs.String("model", "", "model to generate and compare")
	file := fs.String("file", "", "edge-list file to compare instead of generating")
	all := fs.Bool("all", false, "compare every registered model and rank them")
	n := fs.Int("n", 4000, "generated size")
	seed := fs.Uint64("seed", 1, "random seed")
	target := fs.String("target", "as", "reference target: as, asplus")
	sources := fs.Int("path-sources", 300, "BFS sources for path stats (0 = exact)")
	workers := fs.Int("workers", 1, "pool for sharded generation and the metrics engine; 1 = sequential generation, 0 = GOMAXPROCS, unset = sequential generation with an all-core engine")
	prof := cliutil.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.FirstError(
		cliutil.PositiveInt("-n", *n),
		cliutil.NonNegativeInt("-path-sources", *sources),
		cliutil.OneOf("-target", *target, "as", "asplus"),
	); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	tgt := refdata.ASMap2001
	if *target == "asplus" {
		tgt = refdata.ASPlusMap2001
	}
	// -workers unset keeps the historical default: sequential reference
	// generation with the metrics engine on every core (pool 0 means
	// GOMAXPROCS to the engine and "don't shard" to generation — engine
	// width never changes measured values). An explicit -workers sizes
	// both pools, with 0 resolved to all cores so generation shards too,
	// mirroring topogen.
	pool := cliutil.VisitedWorkers(fs, "workers", *workers)
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := graphio.ReadEdgeList(f)
		if err != nil {
			return err
		}
		// Freeze once (checked: oversized maps fail with a message, not
		// a panic) and validate through the parallel engine.
		frozen, err := g.FreezeChecked()
		if err != nil {
			return err
		}
		eng := engine.New(frozen, engine.WithWorkers(pool))
		rep, err := compare.AgainstFrozen(eng, tgt, compare.Options{PathSources: *sources, Rand: rng.New(*seed)})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, rep.String())
		return prof.Stop()
	case *all:
		p := core.Pipeline{N: *n, Seed: *seed, Target: tgt, PathSources: *sources, Workers: pool}
		results, err := p.RunAll()
		if err != nil {
			return err
		}
		reports := make(map[string]*compare.Report, len(results))
		for name, res := range results {
			reports[name] = res.Report
		}
		fmt.Fprintf(stdout, "model ranking against %s (N=%d, lower is better)\n", tgt.Name, *n)
		for rank, name := range compare.RankModels(reports) {
			fmt.Fprintf(stdout, "%2d. %-12s score %6.1f%%\n", rank+1, name, 100*reports[name].Score)
		}
		return prof.Stop()
	case *model != "":
		p := core.Pipeline{N: *n, Seed: *seed, Target: tgt, PathSources: *sources, Workers: pool}
		res, err := p.Run(*model)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Report.String())
		return prof.Stop()
	default:
		return fmt.Errorf("one of -model, -file or -all is required")
	}
}
