package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSweepFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-models", "ba,glp", "-sizes", "200", "-seeds", "1,2",
		"-path-sources", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "2 models × 1 sizes × 2 seeds = 4 cells") {
		t.Fatalf("missing grid banner:\n%s", s)
	}
	if !strings.Contains(s, "cross-seed score at n=200") || !strings.Contains(s, " 1. ") {
		t.Fatalf("missing ranking:\n%s", s)
	}
}

func TestSweepGridFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	spec := `{"models": ["ba"], "sizes": [200], "seeds": [1, 2],
		"params": {"ba": {"m": 1}}, "path_sources": 20}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-grid", path, "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "model,n,seed,score,") {
		t.Fatalf("missing CSV header:\n%s", s)
	}
	for _, label := range []string{"mean", "std", "min", "max"} {
		if !strings.Contains(s, "ba,200,"+label+",") {
			t.Fatalf("missing %s aggregate row:\n%s", label, s)
		}
	}
}

func TestSweepJSONOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	var out bytes.Buffer
	err := run([]string{"-models", "ba", "-sizes", "200", "-seeds", "3",
		"-path-sources", "20", "-format", "json", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"rankings"`) {
		t.Fatalf("JSON missing rankings:\n%s", data)
	}
	if out.Len() != 0 {
		t.Fatal("-o must redirect output away from stdout")
	}
}

// TestSweepWorkerInvariance: the CLI's output bytes must not depend on
// the pool width.
func TestSweepWorkerInvariance(t *testing.T) {
	args := []string{"-models", "ba,glp", "-sizes", "250", "-seeds", "1,2,3",
		"-path-sources", "20", "-format", "csv"}
	var base string
	for _, workers := range []string{"1", "2", "4", "8"} {
		var out bytes.Buffer
		if err := run(append([]string{"-workers", workers}, args...), &out); err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = out.String()
		} else if out.String() != base {
			t.Fatalf("-workers %s changed the output", workers)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("empty grid should fail")
	}
	if err := run([]string{"-models", "ba", "-sizes", "x", "-seeds", "1"}, &out); err == nil {
		t.Fatal("bad -sizes should fail")
	}
	if err := run([]string{"-models", "ba", "-sizes", "100", "-seeds", "-1"}, &out); err == nil {
		t.Fatal("bad -seeds should fail")
	}
	if err := run([]string{"-grid", "/no/such/grid.json"}, &out); err == nil {
		t.Fatal("missing grid file should fail")
	}
	if err := run([]string{"-grid", "x.json", "-models", "ba"}, &out); err == nil {
		t.Fatal("-grid plus axis flags should fail")
	}
	// Every sweep-shaping flag is rejected alongside -grid, not ignored.
	for _, extra := range [][]string{
		{"-target", "asplus"}, {"-path-sources", "10"},
		{"-cell-workers", "2"}, {"-measure-every", "100"},
	} {
		err := run(append([]string{"-grid", "x.json"}, extra...), &out)
		if err == nil || !strings.Contains(err.Error(), extra[0]) {
			t.Fatalf("-grid plus %s should fail naming the flag, got %v", extra[0], err)
		}
	}
	if err := run([]string{"-models", "ba", "-sizes", "100", "-seeds", "1",
		"-format", "nope"}, &out); err == nil {
		t.Fatal("unknown format should fail")
	}
}
