// Command toposweep runs parameter sweeps: a (model × size × seed)
// grid fanned out across a worker pool, every cell validated against
// the published AS-map statistics, and the per-cell reports folded into
// cross-seed aggregates and per-size rankings — the many-maps workload
// the generator-validation literature evaluates with.
//
// Usage:
//
//	toposweep -models ba,glp,pfp -sizes 1000,2000 -seeds 1,2,3,4
//	toposweep -grid grid.json -workers 8 -format csv -o sweep.csv
//	toposweep -models ba,glp -sizes 2000 -seeds 1,2 -measure-every 500 -format json
//
// The grid comes either from the axis flags or from a JSON file
// (-grid), which can additionally carry per-model parameter overrides:
//
//	{
//	  "models": ["ba", "glp", "pfp"],
//	  "sizes": [1000, 2000],
//	  "seeds": [1, 2, 3, 4],
//	  "params": {"glp": {"beta": 0.7}},
//	  "path_sources": 200
//	}
//
// When -grid is given it specifies the sweep completely and the axis
// flags are rejected. -workers sizes the cell pool and never changes
// results: the same grid is bit-identical at every pool width, because
// each cell draws only from random streams split off its own seed.
// -cell-workers (or "cell_workers" in the grid file) switches the
// cells themselves to the sharded generation kernels — different,
// equally valid maps — and is the knob for few-huge-cell sweeps, while
// -workers is the knob for many-small-cell grids.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"netmodel/internal/cliutil"
	"netmodel/internal/core"
	"netmodel/internal/graphio"
	"netmodel/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toposweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("toposweep", flag.ContinueOnError)
	models := fs.String("models", "", "comma-separated model families to sweep")
	sizes := fs.String("sizes", "", "comma-separated target sizes")
	seeds := fs.String("seeds", "", "comma-separated replicate seeds")
	gridFile := fs.String("grid", "", "JSON grid specification (replaces the axis flags)")
	target := fs.String("target", "as", "reference target: as, asplus")
	sources := fs.Int("path-sources", 200, "BFS sources for path stats per cell (0 = exact)")
	workers := fs.Int("workers", 0, "cell pool width; 0 = GOMAXPROCS (never changes results)")
	cellWorkers := fs.Int("cell-workers", 1, "per-cell generation/engine pool; >= 2 uses the sharded kernels")
	measureEvery := fs.Int("measure-every", 0, "record growth trajectories every k nodes (growth families)")
	format := fs.String("format", "table", "output format: table, csv, json")
	out := fs.String("o", "", "output file (default stdout)")
	cacheBudget := fs.String("cache-budget", "0", "artifact-cache byte budget (e.g. 256M, 1G; -1 = unbounded, 0 = off); reuses topology/metrics/routing artifacts across cells, never changing results")
	cacheStats := fs.Bool("cache-stats", false, "report per-stage artifact-cache hit/miss/eviction counters")
	prof := cliutil.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	budget, err := cliutil.ParseByteSize("-cache-budget", *cacheBudget)
	if err != nil {
		return err
	}
	if err := cliutil.FirstError(
		cliutil.OneOf("-target", *target, "as", "asplus"),
		cliutil.NonNegativeInt("-path-sources", *sources),
		cliutil.NonNegativeInt("-measure-every", *measureEvery),
		cliutil.OneOf("-format", *format, "table", "csv", "json"),
	); err != nil {
		return err
	}
	var g sweep.Grid
	if *gridFile != "" {
		// The grid file specifies the sweep completely; any sweep-shaping
		// flag alongside it would be silently ignored, so reject them all
		// (-workers, -format and -o still apply — they never shape the grid).
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "models", "sizes", "seeds", "target", "path-sources", "cell-workers", "measure-every":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-grid specifies the sweep completely; drop %s", strings.Join(conflict, ", "))
		}
		f, err := os.Open(*gridFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if g, err = sweep.LoadGrid(f); err != nil {
			return err
		}
	} else {
		var err error
		g.Models = cliutil.SplitList(*models)
		if g.Sizes, err = cliutil.ParseInts(*sizes); err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
		if g.Seeds, err = cliutil.ParseSeeds(*seeds); err != nil {
			return fmt.Errorf("-seeds: %w", err)
		}
		g.Target = *target
		g.PathSources = *sources
		g.CellWorkers = *cellWorkers
		g.MeasureEvery = *measureEvery
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	s, err := sweep.RunWith(g, sweep.Options{
		Workers:    *workers,
		Cache:      core.NewArtifactCache(budget),
		CacheStats: *cacheStats,
	})
	if err != nil {
		return err
	}
	if s.DuplicateCells > 0 {
		fmt.Fprintf(os.Stderr, "toposweep: warning: %d duplicate cells deduplicated\n", s.DuplicateCells)
	}
	if err := cliutil.WriteOutput(*out, stdout, func(w io.Writer) error {
		switch *format {
		case "table":
			_, err := io.WriteString(w, s.String())
			return err
		case "csv":
			return graphio.WriteSweepCSV(w, s)
		case "json":
			return graphio.WriteSweepJSON(w, s)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}); err != nil {
		return err
	}
	return prof.Stop()
}
