package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFitSmallRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-knob", "ba-attract", "-n", "400", "-grid", "3",
		"-refine", "2", "-path-sources", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "best ba-attract") {
		t.Fatalf("missing result line:\n%s", s)
	}
	if !strings.Contains(s, "eval  1:") {
		t.Fatalf("missing evaluation trace:\n%s", s)
	}
}

// TestFitWorkersPlumbed: -workers must reach the sharded kernels
// without changing what the search reports.
func TestFitWorkersPlumbed(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-knob", "glp-beta", "-n", "400", "-grid", "3",
		"-refine", "2", "-path-sources", "50", "-workers", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "best glp-beta") {
		t.Fatalf("missing result line:\n%s", out.String())
	}
}

func TestFitUnknownKnob(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-knob", "nope"}, &out); err == nil {
		t.Fatal("unknown knob should fail")
	}
}
