// Command topofit calibrates a generator parameter against the
// published AS-map statistics by derivative-free search over the
// aggregate comparison score.
//
// Supported knobs:
//
//	topofit -knob ba-attract   -n 4000   # BA initial attractiveness
//	topofit -knob glp-beta     -n 4000   # GLP preference shift
//	topofit -knob waxman-beta  -n 2000   # Waxman distance scale
//
// -workers shards each evaluation's generation (families with a
// parallel kernel) and metrics engine: 1 keeps the sequential
// reference generators, 0 uses every core for both; left unset,
// generation stays sequential and the engine uses every core.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/cliutil"
	"netmodel/internal/compare"
	"netmodel/internal/engine"
	"netmodel/internal/fit"
	"netmodel/internal/gen"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topofit:", err)
		os.Exit(1)
	}
}

type knob struct {
	lo, hi float64
	build  func(n int, x float64) gen.Generator
}

var knobs = map[string]knob{
	"ba-attract": {-1.8, 2, func(n int, x float64) gen.Generator {
		return gen.BA{N: n, M: 2, A: x}
	}},
	"glp-beta": {-0.5, 0.95, func(n int, x float64) gen.Generator {
		return gen.GLP{N: n, M: 1, P: 0.45, Beta: x}
	}},
	"waxman-beta": {0.02, 0.6, func(n int, x float64) gen.Generator {
		return gen.Waxman{N: n, Alpha: 0.12, Beta: x}
	}},
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topofit", flag.ContinueOnError)
	name := fs.String("knob", "ba-attract", "parameter to calibrate")
	n := fs.Int("n", 3000, "generated size per evaluation")
	seed := fs.Uint64("seed", 1, "random seed")
	grid := fs.Int("grid", 7, "coarse grid points")
	refine := fs.Int("refine", 8, "golden-section refinement steps")
	sources := fs.Int("path-sources", 200, "BFS sources for path stats")
	workers := fs.Int("workers", 1, "pool for sharded generation and the metrics engine; 1 = sequential generation, 0 = GOMAXPROCS, unset = sequential generation with an all-core engine")
	prof := cliutil.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.FirstError(
		cliutil.PositiveInt("-n", *n),
		cliutil.PositiveInt("-grid", *grid),
		cliutil.NonNegativeInt("-refine", *refine),
		cliutil.NonNegativeInt("-path-sources", *sources),
	); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	// Same -workers resolution as topocmp: unset keeps sequential
	// reference generation with the engine on every core; explicit
	// values size both pools (0 = all cores for both).
	pool := cliutil.VisitedWorkers(fs, "workers", *workers)
	k, ok := knobs[*name]
	if !ok {
		names := make([]string, 0, len(knobs))
		for kn := range knobs {
			names = append(names, kn)
		}
		return fmt.Errorf("unknown knob %q (have %v)", *name, names)
	}
	tgt := refdata.ASMap2001
	evals := 0
	obj := func(x float64) (float64, error) {
		evals++
		// Each evaluation runs the candidate through the sharded kernel
		// (pool > 1) and a pool-wide metrics engine, so calibration
		// saturates the hardware the same way the sweep driver does.
		top, err := gen.GenerateWith(k.build(*n, x), rng.New(*seed), pool)
		if err != nil {
			return 0, err
		}
		frozen, err := top.G.FreezeChecked()
		if err != nil {
			return 0, err
		}
		eng := engine.New(frozen, engine.WithWorkers(pool))
		rep, err := compare.AgainstFrozen(eng, tgt,
			compare.Options{PathSources: *sources, Rand: rng.New(*seed + 1)})
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "  eval %2d: x=%8.4f score=%6.2f%%\n", evals, x, 100*rep.Score)
		return rep.Score, nil
	}
	res, err := fit.Minimize1D(obj, k.lo, k.hi, *grid, *refine)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "best %s = %.4f (score %.2f%%, %d evaluations)\n",
		*name, res.X, 100*res.Cost, res.Evals)
	return prof.Stop()
}
