// Command topofit calibrates a generator parameter against the
// published AS-map statistics by derivative-free search over the
// aggregate comparison score.
//
// Supported knobs:
//
//	topofit -knob ba-attract   -n 4000   # BA initial attractiveness
//	topofit -knob glp-beta     -n 4000   # GLP preference shift
//	topofit -knob waxman-beta  -n 2000   # Waxman distance scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netmodel/internal/compare"
	"netmodel/internal/fit"
	"netmodel/internal/gen"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topofit:", err)
		os.Exit(1)
	}
}

type knob struct {
	lo, hi float64
	build  func(n int, x float64) gen.Generator
}

var knobs = map[string]knob{
	"ba-attract": {-1.8, 2, func(n int, x float64) gen.Generator {
		return gen.BA{N: n, M: 2, A: x}
	}},
	"glp-beta": {-0.5, 0.95, func(n int, x float64) gen.Generator {
		return gen.GLP{N: n, M: 1, P: 0.45, Beta: x}
	}},
	"waxman-beta": {0.02, 0.6, func(n int, x float64) gen.Generator {
		return gen.Waxman{N: n, Alpha: 0.12, Beta: x}
	}},
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topofit", flag.ContinueOnError)
	name := fs.String("knob", "ba-attract", "parameter to calibrate")
	n := fs.Int("n", 3000, "generated size per evaluation")
	seed := fs.Uint64("seed", 1, "random seed")
	grid := fs.Int("grid", 7, "coarse grid points")
	refine := fs.Int("refine", 8, "golden-section refinement steps")
	sources := fs.Int("path-sources", 200, "BFS sources for path stats")
	if err := fs.Parse(args); err != nil {
		return err
	}
	k, ok := knobs[*name]
	if !ok {
		names := make([]string, 0, len(knobs))
		for kn := range knobs {
			names = append(names, kn)
		}
		return fmt.Errorf("unknown knob %q (have %v)", *name, names)
	}
	tgt := refdata.ASMap2001
	evals := 0
	obj := func(x float64) (float64, error) {
		evals++
		top, err := k.build(*n, x).Generate(rng.New(*seed))
		if err != nil {
			return 0, err
		}
		rep, err := compare.Against(top.G, tgt,
			compare.Options{PathSources: *sources, Rand: rng.New(*seed + 1)})
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "  eval %2d: x=%8.4f score=%6.2f%%\n", evals, x, 100*rep.Score)
		return rep.Score, nil
	}
	res, err := fit.Minimize1D(obj, k.lo, k.hi, *grid, *refine)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "best %s = %.4f (score %.2f%%, %d evaluations)\n",
		*name, res.X, 100*res.Cost, res.Evals)
	return nil
}
